"""Communication scheduling pass (Section 4.4 of the paper).

The pass turns an assigned program (a sequence of local gates and burst
blocks) into a timed schedule on the distributed machine and reports the
program latency.  It models exactly the constraints the paper discusses:

* each node owns two communication qubits, so at most two remote
  communications can touch a node at any time (``CommResourceTracker``);
* every communication needs an EPR pair whose preparation takes ``t_epr``
  and can be pipelined with earlier computation when a communication qubit
  is free early;
* commutable blocks that share a qubit or node may run in parallel
  ("more block-level parallelism", Figure 12/13);
* sequential TP-Comm blocks that teleport the same hub qubit are fused into
  a teleportation chain, saving ``(n-1)(t_epr + t_tele)`` (Figure 14).

The plain ``greedy`` strategy (used for the Figure 17(c) ablation and for
the baselines) runs the same resource-constrained list scheduler but keeps
strict program order between blocks and performs no fusion.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..comm.blocks import CommBlock, CommScheme
from ..comm.cost import block_latency
from ..hardware.epr import CommResourceTracker
from ..hardware.network import QuantumNetwork
from ..hardware.timing import LatencyModel
from ..ir.commutation import commutes
from ..ir.gates import Gate
from ..partition.mapping import QubitMapping
from .aggregation import ScheduleItem
from .assignment import AssignmentResult

__all__ = ["ScheduledOp", "ScheduleResult", "SchedulePlan", "plan_schedule",
           "schedule_communications", "FusedTPChain"]


@dataclass
class FusedTPChain:
    """A run of TP-Comm blocks on the same hub qubit, fused into one chain.

    The hub is teleported node-to-node around the chain (A -> B -> C -> ... -> A)
    instead of bouncing back to its home node between blocks, which removes
    ``n - 1`` teleportations and their EPR preparations from the critical path.
    """

    blocks: List[CommBlock]

    @property
    def hub_qubit(self) -> int:
        return self.blocks[0].hub_qubit

    def touched_qubits(self) -> Tuple[int, ...]:
        qubits: Set[int] = set()
        for block in self.blocks:
            qubits.update(block.touched_qubits())
        return tuple(sorted(qubits))

    def nodes(self) -> Tuple[int, ...]:
        involved: Set[int] = set()
        for block in self.blocks:
            involved.update(block.nodes)
        return tuple(sorted(involved))

    @property
    def gates(self) -> List[Gate]:
        return [gate for block in self.blocks for gate in block.gates]

    def num_teleports(self) -> int:
        """Teleportations after fusion: one per hop plus the final return."""
        return len(self.blocks) + 1

    def duration(self, mapping: QubitMapping, latency: LatencyModel) -> float:
        body = sum(latency.body_latency(block.gates) for block in self.blocks)
        return self.num_teleports() * latency.t_teleport + body


#: Units handled by the scheduler.
SchedulableItem = Union[Gate, CommBlock, FusedTPChain]


@dataclass(frozen=True)
class ScheduledOp:
    """One scheduled operation with its time window."""

    index: int
    kind: str                       # "gate", "cat", "tp", "tp-chain"
    start: float
    end: float
    nodes: Tuple[int, ...] = ()
    num_remote_gates: int = 0
    #: Assignment items covered by this op (> 1 for fused TP chains).
    num_items: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ScheduleResult:
    """Timed schedule of the whole program."""

    ops: List[ScheduledOp]
    latency: float
    resources: CommResourceTracker
    num_comm_ops: int
    num_fused_chains: int
    #: Which schedule variant produced this result: "burst" (commutation-aware
    #: dependencies + TP fusion) or "plain" (strict program order).  The
    #: execution simulator replays the same variant.
    mode: str = "plain"

    def comm_ops(self) -> List[ScheduledOp]:
        return [op for op in self.ops if op.kind != "gate"]

    def num_scheduled_items(self) -> int:
        """Assignment items covered by the schedule (fused chains count all)."""
        return sum(op.num_items for op in self.ops)

    def parallelism_profile(self, resolution: int = 200) -> List[int]:
        """Sampled count of concurrently running communications over time."""
        comm = self.comm_ops()
        if not comm or self.latency <= 0:
            return []
        samples = []
        for i in range(resolution):
            t = self.latency * i / resolution
            samples.append(sum(1 for op in comm if op.start <= t < op.end))
        return samples


# ---------------------------------------------------------------------------
# Fusion of sequential TP-Comm blocks
# ---------------------------------------------------------------------------

def fuse_tp_chains(items: Sequence[ScheduleItem],
                   mapping: QubitMapping) -> List[SchedulableItem]:
    """Fuse runs of TP blocks sharing a hub qubit into :class:`FusedTPChain` units.

    Two TP blocks are fused when they teleport the same hub qubit and every
    intervening item either avoids the chain's qubits entirely or commutes
    with all of its blocks (so hopping the state directly from one remote
    node to the next is a commutation-justified reordering).  An intervening
    item that touches the hub always closes the chain: the hub is away from
    its home node mid-chain, so nothing else may act on it.
    """
    out: List[SchedulableItem] = []
    open_chain: List[CommBlock] = []

    def close() -> None:
        nonlocal open_chain
        if len(open_chain) >= 2:
            out.append(FusedTPChain(blocks=open_chain))
        elif open_chain:
            out.append(open_chain[0])
        open_chain = []

    for item in items:
        if isinstance(item, CommBlock) and item.scheme is CommScheme.TP:
            if open_chain and open_chain[-1].hub_qubit != item.hub_qubit:
                close()
            open_chain.append(item)
            continue
        if isinstance(item, Gate) and item.is_barrier:
            close()
            out.append(item)
            continue
        touched = (set(item.touched_qubits()) if isinstance(item, CommBlock)
                   else set(item.qubits))
        if open_chain:
            chain_qubits: Set[int] = set()
            for block in open_chain:
                chain_qubits.update(block.touched_qubits())
            if (open_chain[-1].hub_qubit in touched
                    or (touched & chain_qubits
                        and not all(_items_commute(item, block)
                                    for block in open_chain))):
                close()
        out.append(item)
    close()
    return out


# ---------------------------------------------------------------------------
# Dependency graph construction
# ---------------------------------------------------------------------------

def _item_qubits(item: SchedulableItem, num_qubits: int) -> Tuple[int, ...]:
    if isinstance(item, (CommBlock, FusedTPChain)):
        return item.touched_qubits()
    if item.is_barrier:
        return tuple(range(num_qubits))
    return item.qubits


def _items_commute(a: SchedulableItem, b: SchedulableItem) -> bool:
    gates_a = a.gates if isinstance(a, (CommBlock, FusedTPChain)) else [a]
    gates_b = b.gates if isinstance(b, (CommBlock, FusedTPChain)) else [b]
    for ga in gates_a:
        for gb in gates_b:
            if not commutes(ga, gb):
                return False
    return True


def _build_dependencies(items: Sequence[SchedulableItem], num_qubits: int,
                        commutation_aware: bool,
                        lookback: int = 12) -> List[List[int]]:
    """Return predecessor lists per item index.

    With ``commutation_aware`` enabled, an item may skip the dependency on
    the most recent items sharing a qubit when they commute (pairwise,
    bounded lookback), which is what allows two commutable blocks with a
    shared qubit or node to run in parallel.
    """
    preds: List[List[int]] = [[] for _ in items]
    history: Dict[int, List[int]] = {q: [] for q in range(num_qubits)}
    for index, item in enumerate(items):
        qubits = _item_qubits(item, num_qubits)
        chosen: Set[int] = set()
        for qubit in qubits:
            chain = history[qubit]
            if not chain:
                continue
            if not commutation_aware:
                chosen.add(chain[-1])
                continue
            both_blocks_possible = isinstance(item, (CommBlock, FusedTPChain))
            depends_on_someone = False
            for offset, prev_index in enumerate(reversed(chain)):
                if offset >= lookback:
                    chosen.add(prev_index)
                    depends_on_someone = True
                    break
                prev_item = items[prev_index]
                if (both_blocks_possible
                        and isinstance(prev_item, (CommBlock, FusedTPChain))
                        and _items_commute(item, prev_item)):
                    # Commutable block pair: no ordering needed; keep looking
                    # further back for the real dependency.
                    continue
                chosen.add(prev_index)
                depends_on_someone = True
                break
            if not depends_on_someone:
                # Everything in the window commuted; anchor on the oldest item
                # beyond the window if one exists.
                if len(chain) > lookback:
                    chosen.add(chain[-lookback - 1])
        preds[index] = sorted(chosen)
        for qubit in qubits:
            history[qubit].append(index)
    return preds


# ---------------------------------------------------------------------------
# Schedule planning (shared with the execution simulator)
# ---------------------------------------------------------------------------

@dataclass
class SchedulePlan:
    """Schedulable items plus their dependency graph.

    Both the analytical list scheduler below and the discrete-event execution
    engine in :mod:`repro.sim` consume the same plan, so deterministic
    simulation replays exactly the units and ordering constraints the
    analytical latency was computed from.
    """

    items: List[SchedulableItem]
    preds: List[List[int]]
    num_fused_chains: int
    burst: bool

    @property
    def mode(self) -> str:
        return "burst" if self.burst else "plain"

    def successors(self) -> List[List[int]]:
        succs: List[List[int]] = [[] for _ in self.items]
        for index, plist in enumerate(self.preds):
            for p in plist:
                succs[p].append(index)
        return succs

    def item_count(self, index: int) -> int:
        """Assignment items covered by plan unit ``index``."""
        item = self.items[index]
        return len(item.blocks) if isinstance(item, FusedTPChain) else 1


def plan_schedule(assignment: AssignmentResult, burst: bool) -> SchedulePlan:
    """Build the schedulable units and dependency graph for one program."""
    mapping = assignment.mapping
    num_qubits = assignment.aggregation.circuit.num_qubits
    items: List[SchedulableItem] = list(assignment.items)
    num_fused = 0
    if burst:
        fused = fuse_tp_chains(items, mapping)
        num_fused = sum(isinstance(i, FusedTPChain) for i in fused)
        items = fused
    preds = _build_dependencies(items, num_qubits, commutation_aware=burst)
    return SchedulePlan(items=items, preds=preds, num_fused_chains=num_fused,
                        burst=burst)


# ---------------------------------------------------------------------------
# Resource-constrained list scheduling
# ---------------------------------------------------------------------------

def schedule_communications(assignment: AssignmentResult,
                            network: QuantumNetwork,
                            strategy: str = "burst-greedy") -> ScheduleResult:
    """Schedule an assigned program onto the network.

    Args:
        assignment: output of :func:`repro.core.assignment.assign_communications`.
        network: the distributed machine (latency model and comm-qubit counts).
        strategy: ``"burst-greedy"`` for the full AutoComm schedule
            (commutation-aware block parallelism plus TP fusion) or
            ``"greedy"`` for the plain as-soon-as-possible schedule used by
            the baselines and the Figure 17(c) ablation.
    """
    if strategy not in ("burst-greedy", "greedy"):
        raise ValueError(f"unknown scheduling strategy {strategy!r}")
    if strategy == "burst-greedy":
        # The burst-aware schedule is adaptive: commutation-driven reordering
        # and TP fusion almost always help, but greedy list scheduling under
        # resource constraints can exhibit anomalies, so keep whichever of the
        # two schedules finishes earlier.
        burst_result = _run_schedule(assignment, network, burst=True)
        plain_result = _run_schedule(assignment, network, burst=False)
        return (burst_result if burst_result.latency <= plain_result.latency
                else plain_result)
    return _run_schedule(assignment, network, burst=False)


def _run_schedule(assignment: AssignmentResult, network: QuantumNetwork,
                  burst: bool) -> ScheduleResult:
    latency = network.latency
    mapping = assignment.mapping

    plan = plan_schedule(assignment, burst=burst)
    items = plan.items
    succs = plan.successors()
    indegree = [len(plist) for plist in plan.preds]

    resources = CommResourceTracker(network)
    ready_time = [0.0] * len(items)
    finish_time = [0.0] * len(items)
    scheduled: List[Optional[ScheduledOp]] = [None] * len(items)

    heap: List[Tuple[float, int]] = []
    for index, degree in enumerate(indegree):
        if degree == 0:
            heapq.heappush(heap, (0.0, index))

    completed = 0
    while heap:
        ready, index = heapq.heappop(heap)
        item = items[index]
        op = _schedule_item(item, index, ready, mapping, network, latency,
                            resources)
        scheduled[index] = op
        finish_time[index] = op.end
        completed += 1
        for succ in succs[index]:
            ready_time[succ] = max(ready_time[succ], op.end)
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(heap, (ready_time[succ], succ))

    if completed != len(items):  # pragma: no cover - defensive
        raise RuntimeError("dependency cycle in schedule construction")

    ops = [op for op in scheduled if op is not None]
    makespan = max((op.end for op in ops), default=0.0)
    num_comm = sum(1 for op in ops if op.kind != "gate")
    return ScheduleResult(ops=ops, latency=makespan, resources=resources,
                          num_comm_ops=num_comm,
                          num_fused_chains=plan.num_fused_chains,
                          mode=plan.mode)


def _schedule_item(item: SchedulableItem, index: int, ready: float,
                   mapping: QubitMapping, network: QuantumNetwork,
                   latency: LatencyModel,
                   resources: CommResourceTracker) -> ScheduledOp:
    if isinstance(item, Gate):
        duration = latency.gate_latency(item)
        return ScheduledOp(index=index, kind="gate", start=ready,
                           end=ready + duration)

    if isinstance(item, FusedTPChain):
        duration = item.duration(mapping, latency)
        nodes = item.nodes()
        start = _reserve_comm(resources, nodes, ready, duration,
                              _epr_prep_latency(network, nodes),
                              label=f"tp-chain-{index}")
        return ScheduledOp(index=index, kind="tp-chain", start=start,
                           end=start + duration, nodes=nodes,
                           num_remote_gates=sum(
                               b.num_remote_gates(mapping) for b in item.blocks),
                           num_items=len(item.blocks))

    # Single communication block.
    duration = block_latency(item, mapping, latency)
    nodes = item.nodes
    kind = "tp" if item.scheme is CommScheme.TP else "cat"
    start = _reserve_comm(resources, nodes, ready, duration,
                          _epr_prep_latency(network, nodes),
                          label=f"{kind}-{index}")
    return ScheduledOp(index=index, kind=kind, start=start,
                       end=start + duration, nodes=nodes,
                       num_remote_gates=item.num_remote_gates(mapping))


def _epr_prep_latency(network: QuantumNetwork, nodes: Sequence[int]) -> float:
    """EPR preparation latency for a communication spanning ``nodes``.

    With non-uniform topologies (see :mod:`repro.hardware.topology`) the
    per-pair latency varies; a fused chain spanning several nodes is charged
    the slowest pair it uses.
    """
    nodes = list(nodes)
    if len(nodes) < 2:
        return network.latency.t_epr
    return max(network.epr_latency(a, b)
               for i, a in enumerate(nodes) for b in nodes[i + 1:])


def _reserve_comm(resources: CommResourceTracker, nodes: Sequence[int],
                  ready: float, duration: float, prep: float,
                  label: str) -> float:
    """Find and book the earliest feasible window for a communication.

    The communication qubits on every involved node are occupied from
    ``start - prep`` (EPR preparation, pipelined with earlier computation
    when a qubit is free early) until the protocol finishes.
    """
    earliest_prep = max(0.0, ready - prep)
    prep_start, _ = resources.earliest_joint(list(nodes), prep + duration,
                                             not_before=earliest_prep)
    start = prep_start + prep
    for node in nodes:
        resources.reserve(node, prep_start, start + duration, label=label)
    return start
