"""Reference (pre-optimization) plan construction for the scheduling pass.

Preserves the original commutation handling of :mod:`repro.core.scheduling`
exactly as it behaved before the hot-path overhaul: ``_items_commute``
checks the full |A| x |B| gate cross product for every query, nothing is
memoised across queries, chain/item qubit sets are rebuilt per comparison,
and plans are rebuilt from scratch on every request.  The resource-
constrained list scheduler itself is shared with the optimized pass (it was
never hot), so any divergence between the two paths is isolated to plan
construction.

Used by the equivalence tests and by ``benchmarks/bench_compiler_perf.py``
to measure the optimized pass against the true pre-optimization baseline.
Do not "optimize" this module: its slowness is the baseline being measured.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import heapq

from ..comm.blocks import CommBlock, CommScheme
from ..hardware.epr import CommResourceTracker
from ..hardware.network import QuantumNetwork
from ..ir.commutation_reference import commutes_reference as commutes
from ..ir.gates import Gate
from ..partition.mapping import QubitMapping
from .aggregation import ScheduleItem
from .assignment import AssignmentResult
from .aggregation_reference import _touched_qubits_scan
from .assignment_reference import _remote_gates, block_latency_reference
from .scheduling import (FusedTPChain, SchedulableItem, SchedulePlan,
                         ScheduledOp, ScheduleResult, _epr_prep_latency,
                         _reserve_comm)

__all__ = ["plan_schedule_reference", "schedule_communications_reference"]


def _item_touched_scan(item: SchedulableItem) -> Tuple[int, ...]:
    """Scanning replica of the pre-optimization ``touched_qubits``."""
    if isinstance(item, CommBlock):
        return _touched_qubits_scan(item)
    qubits: Set[int] = set()
    for block in item.blocks:
        qubits.update(_touched_qubits_scan(block))
    return tuple(sorted(qubits))


def _item_qubits_reference(item: SchedulableItem,
                           num_qubits: int) -> Tuple[int, ...]:
    if isinstance(item, (CommBlock, FusedTPChain)):
        return _item_touched_scan(item)
    if item.is_barrier:
        return tuple(range(num_qubits))
    return item.qubits


def _items_commute_reference(a: SchedulableItem, b: SchedulableItem) -> bool:
    gates_a = a.gates if isinstance(a, (CommBlock, FusedTPChain)) else [a]
    gates_b = b.gates if isinstance(b, (CommBlock, FusedTPChain)) else [b]
    for ga in gates_a:
        for gb in gates_b:
            if not commutes(ga, gb):
                return False
    return True


def _fuse_tp_chains_reference(items: Sequence[ScheduleItem],
                              mapping: QubitMapping) -> List[SchedulableItem]:
    out: List[SchedulableItem] = []
    open_chain: List[CommBlock] = []

    def close() -> None:
        nonlocal open_chain
        if len(open_chain) >= 2:
            out.append(FusedTPChain(blocks=open_chain))
        elif open_chain:
            out.append(open_chain[0])
        open_chain = []

    for item in items:
        if isinstance(item, CommBlock) and item.scheme is CommScheme.TP:
            if open_chain and open_chain[-1].hub_qubit != item.hub_qubit:
                close()
            open_chain.append(item)
            continue
        if isinstance(item, Gate) and item.is_barrier:
            close()
            out.append(item)
            continue
        touched = (set(_touched_qubits_scan(item)) if isinstance(item, CommBlock)
                   else set(item.qubits))
        if open_chain:
            chain_qubits: Set[int] = set()
            for block in open_chain:
                chain_qubits.update(_touched_qubits_scan(block))
            if (open_chain[-1].hub_qubit in touched
                    or (touched & chain_qubits
                        and not all(_items_commute_reference(item, block)
                                    for block in open_chain))):
                close()
        out.append(item)
    close()
    return out


def _build_dependencies_reference(items: Sequence[SchedulableItem],
                                  num_qubits: int, commutation_aware: bool,
                                  lookback: int = 12) -> List[List[int]]:
    preds: List[List[int]] = [[] for _ in items]
    history: Dict[int, List[int]] = {q: [] for q in range(num_qubits)}
    for index, item in enumerate(items):
        qubits = _item_qubits_reference(item, num_qubits)
        chosen: Set[int] = set()
        for qubit in qubits:
            chain = history[qubit]
            if not chain:
                continue
            if not commutation_aware:
                chosen.add(chain[-1])
                continue
            both_blocks_possible = isinstance(item, (CommBlock, FusedTPChain))
            depends_on_someone = False
            for offset, prev_index in enumerate(reversed(chain)):
                if offset >= lookback:
                    chosen.add(prev_index)
                    depends_on_someone = True
                    break
                prev_item = items[prev_index]
                if (both_blocks_possible
                        and isinstance(prev_item, (CommBlock, FusedTPChain))
                        and _items_commute_reference(item, prev_item)):
                    continue
                chosen.add(prev_index)
                depends_on_someone = True
                break
            if not depends_on_someone:
                if len(chain) > lookback:
                    chosen.add(chain[-lookback - 1])
        preds[index] = sorted(chosen)
        for qubit in qubits:
            history[qubit].append(index)
    return preds


def plan_schedule_reference(assignment: AssignmentResult,
                            burst: bool) -> SchedulePlan:
    """Build a schedule plan through the original (unmemoised) path."""
    mapping = assignment.mapping
    num_qubits = assignment.aggregation.circuit.num_qubits
    items: List[SchedulableItem] = list(assignment.items)
    num_fused = 0
    if burst:
        fused = _fuse_tp_chains_reference(items, mapping)
        num_fused = sum(isinstance(i, FusedTPChain) for i in fused)
        items = fused
    preds = _build_dependencies_reference(items, num_qubits,
                                          commutation_aware=burst)
    return SchedulePlan(items=items, preds=preds, num_fused_chains=num_fused,
                        burst=burst)


def _run_schedule_reference(assignment: AssignmentResult,
                            network: QuantumNetwork,
                            burst: bool) -> ScheduleResult:
    latency = network.latency
    mapping = assignment.mapping

    plan = plan_schedule_reference(assignment, burst=burst)
    items = plan.items
    succs = plan.successors()
    indegree = [len(plist) for plist in plan.preds]

    resources = CommResourceTracker(network)
    ready_time = [0.0] * len(items)
    finish_time = [0.0] * len(items)
    scheduled: List[Optional[ScheduledOp]] = [None] * len(items)

    heap: List[Tuple[float, int]] = []
    for index, degree in enumerate(indegree):
        if degree == 0:
            heapq.heappush(heap, (0.0, index))

    completed = 0
    while heap:
        ready, index = heapq.heappop(heap)
        item = items[index]
        op = _schedule_item_reference(item, index, ready, mapping, network,
                                      latency, resources)
        scheduled[index] = op
        finish_time[index] = op.end
        completed += 1
        for succ in succs[index]:
            ready_time[succ] = max(ready_time[succ], op.end)
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(heap, (ready_time[succ], succ))

    if completed != len(items):  # pragma: no cover - defensive
        raise RuntimeError("dependency cycle in schedule construction")

    ops = [op for op in scheduled if op is not None]
    makespan = max((op.end for op in ops), default=0.0)
    num_comm = sum(1 for op in ops if op.kind != "gate")
    return ScheduleResult(ops=ops, latency=makespan, resources=resources,
                          num_comm_ops=num_comm,
                          num_fused_chains=plan.num_fused_chains,
                          mode=plan.mode)


def _schedule_item_reference(item: SchedulableItem, index: int, ready: float,
                             mapping: QubitMapping, network: QuantumNetwork,
                             latency, resources: CommResourceTracker
                             ) -> ScheduledOp:
    if isinstance(item, Gate):
        duration = latency.gate_latency(item)
        return ScheduledOp(index=index, kind="gate", start=ready,
                           end=ready + duration)

    if isinstance(item, FusedTPChain):
        duration = item.duration(mapping, latency)
        nodes = item.nodes()
        start = _reserve_comm(resources, nodes, ready, duration,
                              _epr_prep_latency(network, nodes),
                              label=f"tp-chain-{index}")
        return ScheduledOp(index=index, kind="tp-chain", start=start,
                           end=start + duration, nodes=nodes,
                           num_remote_gates=sum(
                               len(_remote_gates(b, mapping))
                               for b in item.blocks),
                           num_items=len(item.blocks))

    duration = block_latency_reference(item, mapping, latency)
    nodes = item.nodes
    kind = "tp" if item.scheme is CommScheme.TP else "cat"
    start = _reserve_comm(resources, nodes, ready, duration,
                          _epr_prep_latency(network, nodes),
                          label=f"{kind}-{index}")
    return ScheduledOp(index=index, kind=kind, start=start,
                       end=start + duration, nodes=nodes,
                       num_remote_gates=len(_remote_gates(item, mapping)))


def schedule_communications_reference(assignment: AssignmentResult,
                                      network: QuantumNetwork,
                                      strategy: str = "burst-greedy"
                                      ) -> ScheduleResult:
    """Schedule through the reference plan builder (original behaviour)."""
    if strategy not in ("burst-greedy", "greedy"):
        raise ValueError(f"unknown scheduling strategy {strategy!r}")
    if strategy == "burst-greedy":
        burst_result = _run_schedule_reference(assignment, network, burst=True)
        plain_result = _run_schedule_reference(assignment, network, burst=False)
        return (burst_result if burst_result.latency <= plain_result.latency
                else plain_result)
    return _run_schedule_reference(assignment, network, burst=False)
