"""Evaluation metrics (Section 5.1 of the paper).

* ``total_comm`` — number of issued remote communications (EPR pairs); one
  per Cat-Comm invocation, two per TP-Comm block.
* ``tp_comm`` — communications spent on TP-Comm blocks.
* ``peak_rem_cx`` — the largest number of remote two-qubit gates executed
  through one communication (averaged over the two communications of a TP
  round trip).
* ``latency`` — program execution time in CX-gate units, from the
  resource-constrained schedule.
* ``improv_factor`` / ``lat_dec_factor`` — baseline-over-AutoComm ratios of
  communication count and latency.

The burst distribution of Figure 15 (probability that one communication
carries at least X remote CX gates) is also computed here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..comm.blocks import CommBlock, CommScheme
from ..partition.mapping import QubitMapping

__all__ = ["CompilationMetrics", "comparison_factors", "burst_distribution",
           "distribution_from_loads", "communication_loads"]


@dataclass(frozen=True)
class CompilationMetrics:
    """Headline numbers for one compiled program."""

    name: str
    total_comm: int
    tp_comm: int
    cat_comm: int
    peak_rem_cx: float
    latency: float
    num_blocks: int
    num_remote_gates: int
    #: Physical EPR pairs behind the issued communications, entanglement
    #: swaps included: ``total_comm`` scaled per block by its route's hop
    #: count (equals ``total_comm`` on all-to-all connectivity).  Like
    #: ``total_comm`` this follows the paper's per-block Section 5.1
    #: convention — TP-chain fusion savings are a schedule-level effect and
    #: show up in ``SimulationResult.total_epr_pairs`` instead.
    total_epr_pairs: Optional[int] = None
    #: Latency-weighted communication volume: the sum over all issued
    #: communications of their pair's routed end-to-end EPR preparation
    #: latency (link-latency combination over the route).  On uniform links
    #: this is ``total_comm * t_epr`` scaled by swap overheads; with a
    #: heterogeneous :class:`~repro.hardware.links.LinkModel` it separates
    #: programs whose pair counts agree but whose traffic crosses different
    #: fibres.  ``None`` when the compiler had no network to price with.
    total_epr_latency: Optional[float] = None
    #: Phases of a phase-structured compile (1 = the static pipeline).
    num_phases: int = 1
    #: Inter-phase qubit migrations performed by dynamic remapping, and the
    #: total latency bill those teleports were charged (routed EPR
    #: preparation plus one ``t_teleport`` per move).  Migrations are kept
    #: out of every communication metric above — ``total_comm``,
    #: ``total_epr_pairs`` and ``total_epr_latency`` price the program's
    #: communications under the per-phase mappings, and a remap pays
    #: ``migration_moves``/``migration_latency`` to shrink them.  (The
    #: executed-pair count ``SimulationResult.total_epr_pairs`` and the
    #: fidelity estimate do include the migration teleports: they report
    #: what the machine really does.)
    migration_moves: int = 0
    migration_latency: float = 0.0
    #: Compute-idle time at phase boundaries in the resource-constrained
    #: schedule: per boundary, the gap between the last compute op of the
    #: earlier phase retiring and the first compute op of the later phase
    #: starting, where only migration teleports run.  Zero for static
    #: compiles; the overlap scheduler exists to shrink this.
    boundary_bubble: float = 0.0

    def __post_init__(self) -> None:
        if self.total_epr_pairs is None:
            object.__setattr__(self, "total_epr_pairs", self.total_comm)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "total_comm": self.total_comm,
            "tp_comm": self.tp_comm,
            "cat_comm": self.cat_comm,
            "peak_rem_cx": self.peak_rem_cx,
            "latency": self.latency,
            "num_blocks": self.num_blocks,
            "num_remote_gates": self.num_remote_gates,
            "total_epr_pairs": self.total_epr_pairs,
            "total_epr_latency": self.total_epr_latency,
            "num_phases": self.num_phases,
            "migration_moves": self.migration_moves,
            "migration_latency": self.migration_latency,
            "boundary_bubble": self.boundary_bubble,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CompilationMetrics":
        """Inverse of :meth:`as_dict` (used by the run-report loader).

        ``as_dict(from_dict(d)) == d`` for any ``as_dict`` output, so
        metrics survive a JSON round trip through
        :class:`~repro.obs.report.RunReport` unchanged.
        """
        known = {f: data[f] for f in (
            "name", "total_comm", "tp_comm", "cat_comm", "peak_rem_cx",
            "latency", "num_blocks", "num_remote_gates", "total_epr_pairs",
            "total_epr_latency", "num_phases", "migration_moves",
            "migration_latency", "boundary_bubble") if f in data}
        missing = {"name", "total_comm", "tp_comm", "cat_comm",
                   "peak_rem_cx", "latency", "num_blocks",
                   "num_remote_gates"} - known.keys()
        if missing:
            raise ValueError("compilation metrics dict is missing required "
                             f"fields: {', '.join(sorted(missing))}")
        return cls(**known)


def comparison_factors(baseline: CompilationMetrics,
                       optimized: CompilationMetrics) -> Dict[str, float]:
    """Return the paper's two relative metrics: improv. and LAT-DEC factors."""
    improv = (baseline.total_comm / optimized.total_comm
              if optimized.total_comm else float("inf"))
    lat_dec = (baseline.latency / optimized.latency
               if optimized.latency else float("inf"))
    return {"improv_factor": improv, "lat_dec_factor": lat_dec}


def communication_loads(blocks: Sequence[CommBlock],
                        mapping: QubitMapping) -> List[float]:
    """Remote-CX load of every issued communication.

    Cat-Comm blocks contribute one entry per Cat segment; TP-Comm blocks
    contribute two entries, each carrying half of the block's remote gates
    (the paper's averaging convention).
    """
    loads: List[float] = []
    for block in blocks:
        remote = block.num_remote_gates(mapping)
        if block.scheme is CommScheme.TP:
            loads.extend([remote / 2.0, remote / 2.0])
        else:
            segments = max(1, block.cat_comm_cost(mapping))
            per_segment = remote / segments
            loads.extend([per_segment] * segments)
    return loads


def distribution_from_loads(loads: Sequence[float],
                            max_x: Optional[int] = None) -> Dict[int, float]:
    """``Pr[one communication carries >= X remote CX gates]`` over ``loads``.

    Shared by :func:`burst_distribution` and the phase-structured pipeline,
    whose per-phase loads are classified under different mappings before
    being pooled into one program-level distribution.
    """
    if not loads:
        return {}
    if max_x is None:
        max_x = max(1, int(max(loads)))
    total = len(loads)
    return {x: sum(1 for load in loads if load >= x) / total
            for x in range(1, max_x + 1)}


def burst_distribution(blocks: Sequence[CommBlock], mapping: QubitMapping,
                       max_x: Optional[int] = None) -> Dict[int, float]:
    """``Pr[one communication carries >= X remote CX gates]`` (Figure 15)."""
    return distribution_from_loads(communication_loads(blocks, mapping),
                                   max_x=max_x)
