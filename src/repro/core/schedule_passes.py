"""Composable schedule-construction passes for phase-structured plans.

Mirrors the pass-pipeline structure of zero-bubble pipeline parallelism's
``run_schedule_passes``: schedule construction is a sequence of small,
individually testable rewriting passes over a :class:`ScheduleDraft` — the
evolving per-phase item streams plus the growing combined plan arrays —
instead of one monolithic loop.  The registry ships four passes:

* ``fuse-chains`` — per-phase TP-chain fusion (burst mode only);
* ``build-deps`` — per-phase dependency graphs (commutation-aware under
  burst), recording for every item the qubits it has **no** intra-phase
  dependency on (its *open* qubits);
* ``barrier-phases`` — the PR 5 boundary semantics: every migration waits
  for all sinks of the earlier phase, and the later phase's sources wait
  for the boundary.  Byte-identical to the pre-pass-pipeline stitcher;
* ``overlap-boundaries`` — zero-bubble boundaries: a migration teleport of
  qubit ``q`` may start as soon as ``q``'s last phase-N ops retire, and
  phase-N+1 items are gated only on the migrations and cross-phase
  predecessors of the qubits they actually touch, so boundary bubbles fill
  with migration/compute overlap.

:func:`repro.core.scheduling.plan_phased_schedule` drives the default
pipeline; custom pipelines can be run directly via
:func:`run_schedule_passes` for per-pass testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..partition.mapping import QubitMapping
from .scheduling import (FusedTPChain, MigrationOp, SchedulableItem,
                         _PairwiseCommutation, _build_dependencies,
                         _item_qubits, fuse_tp_chains)

__all__ = ["ScheduleDraft", "SCHEDULE_PASSES", "register_schedule_pass",
           "default_passes", "run_schedule_passes"]


@dataclass
class ScheduleDraft:
    """Mutable working state threaded through the schedule passes.

    The per-phase stream fields (``phase_items``, ``local_preds``,
    ``open_qubits``) are rewritten by the local passes; exactly one stitch
    pass (``barrier-phases`` or ``overlap-boundaries``) then flattens them
    into the combined plan arrays (``items``/``preds``/``item_mappings``/
    ``item_phases``) a :class:`~repro.core.scheduling.SchedulePlan` is built
    from.
    """

    phases: Sequence
    migrations: Sequence[Sequence[MigrationOp]]
    burst: bool
    overlap: bool
    num_qubits: int
    oracle: _PairwiseCommutation
    #: One schedulable-item stream per phase (seeded from the assignments).
    phase_items: List[List[SchedulableItem]] = field(default_factory=list)
    #: Per-phase intra-phase predecessor lists (local indices).
    local_preds: Optional[List[List[List[int]]]] = None
    #: Per-phase, per-item qubits with no intra-phase dependency chosen.
    open_qubits: Optional[List[List[Set[int]]]] = None
    num_fused_chains: int = 0
    # Combined plan arrays, filled by the stitch pass.
    items: List[SchedulableItem] = field(default_factory=list)
    preds: List[List[int]] = field(default_factory=list)
    item_mappings: List[QubitMapping] = field(default_factory=list)
    #: Phase index per plan item; migrations carry the phase they move into.
    item_phases: List[int] = field(default_factory=list)

    @classmethod
    def from_phases(cls, phases: Sequence,
                    migrations: Sequence[Sequence[MigrationOp]],
                    burst: bool, overlap: bool,
                    num_qubits: int) -> "ScheduleDraft":
        return cls(phases=phases, migrations=migrations, burst=burst,
                   overlap=overlap, num_qubits=num_qubits,
                   oracle=_PairwiseCommutation(),
                   phase_items=[list(phase.assignment.items)
                                for phase in phases])


PassFn = Callable[[ScheduleDraft], None]

#: Registry of named schedule passes, in no particular order; pipelines are
#: explicit pass-name lists (see :func:`default_passes`).
SCHEDULE_PASSES: Dict[str, PassFn] = {}


def register_schedule_pass(name: str) -> Callable[[PassFn], PassFn]:
    """Register ``fn`` under ``name`` in :data:`SCHEDULE_PASSES`."""
    def decorator(fn: PassFn) -> PassFn:
        SCHEDULE_PASSES[name] = fn
        return fn
    return decorator


def default_passes(draft: ScheduleDraft) -> List[str]:
    """The standard pipeline for a draft: local passes, then one stitcher."""
    return ["fuse-chains", "build-deps",
            "overlap-boundaries" if draft.overlap else "barrier-phases"]


def run_schedule_passes(draft: ScheduleDraft,
                        pass_names: Optional[Sequence[str]] = None
                        ) -> ScheduleDraft:
    """Run ``pass_names`` (default pipeline when omitted) over ``draft``."""
    if pass_names is None:
        pass_names = default_passes(draft)
    for name in pass_names:
        try:
            schedule_pass = SCHEDULE_PASSES[name]
        except KeyError:
            raise ValueError(
                f"unknown schedule pass {name!r}; registered: "
                f"{sorted(SCHEDULE_PASSES)}") from None
        schedule_pass(draft)
    return draft


# ---------------------------------------------------------------------------
# Local (per-phase) passes
# ---------------------------------------------------------------------------

@register_schedule_pass("fuse-chains")
def fuse_chains_pass(draft: ScheduleDraft) -> None:
    """Fuse sequential TP blocks per phase (no-op outside burst mode)."""
    if not draft.burst:
        return
    for index, phase in enumerate(draft.phases):
        fused = fuse_tp_chains(draft.phase_items[index], phase.mapping,
                               oracle=draft.oracle)
        draft.num_fused_chains += sum(isinstance(i, FusedTPChain)
                                      for i in fused)
        draft.phase_items[index] = fused


@register_schedule_pass("build-deps")
def build_deps_pass(draft: ScheduleDraft) -> None:
    """Build each phase's intra-phase dependency graph and open-qubit sets."""
    draft.local_preds = []
    draft.open_qubits = []
    for items in draft.phase_items:
        preds, open_qubits = _build_dependencies(
            items, draft.num_qubits, commutation_aware=draft.burst,
            oracle=draft.oracle, collect_open=True)
        draft.local_preds.append(preds)
        draft.open_qubits.append(open_qubits)


# ---------------------------------------------------------------------------
# Stitch passes (exactly one per pipeline)
# ---------------------------------------------------------------------------

@register_schedule_pass("barrier-phases")
def barrier_phases_pass(draft: ScheduleDraft) -> None:
    """Hard phase boundaries: migrations wait for every earlier-phase sink.

    Reproduces the PR 5 semantics exactly: each boundary's migrations
    depend on all sinks of the phase before it, and every source of the
    later phase depends on the boundary (on the earlier phase's sinks
    directly when no qubit moves).
    """
    barrier: List[int] = []
    for index, phase in enumerate(draft.phases):
        items = draft.phase_items[index]
        local_preds = draft.local_preds[index]
        offset = len(draft.items)
        has_successor = [False] * len(items)
        for local, plist in enumerate(local_preds):
            shifted = [p + offset for p in plist]
            if not shifted and barrier:
                shifted = list(barrier)
            draft.preds.append(sorted(shifted))
            for p in plist:
                has_successor[p] = True
        draft.items.extend(items)
        draft.item_mappings.extend([phase.mapping] * len(items))
        draft.item_phases.extend([index] * len(items))
        sinks = [offset + local for local in range(len(items))
                 if not has_successor[local]]
        if not sinks:
            sinks = list(barrier)
        if index < len(draft.phases) - 1:
            moves = list(draft.migrations[index])
            if moves:
                move_offset = len(draft.items)
                next_mapping = draft.phases[index + 1].mapping
                for move in moves:
                    draft.preds.append(sorted(sinks))
                    draft.items.append(move)
                    draft.item_mappings.append(next_mapping)
                    draft.item_phases.append(index + 1)
                barrier = list(range(move_offset, len(draft.items)))
            else:
                barrier = sinks


@register_schedule_pass("overlap-boundaries")
def overlap_boundaries_pass(draft: ScheduleDraft) -> None:
    """Zero-bubble boundaries: per-qubit edges instead of a global barrier.

    A *retire frontier* per qubit tracks, across the stream, the plan
    indices whose completion releases the qubit: all of the latest phase's
    items touching it, or the migration that moved it.  The boundary rules:

    * a migration of qubit ``q`` depends on **every** phase-N item touching
      ``q`` (commutation-aware intra-phase graphs do not totally order a
      qubit's touchers, so depending only on the last one would be unsound)
      — or on ``q``'s previous frontier when phase N never touched it;
    * a phase-N+1 item waits on the frontier of each qubit it has no
      intra-phase dependency on (its open qubits); every other qubit's
      cross-phase ordering is inherited transitively through the item's
      intra-phase predecessor chain, which bottoms out at that qubit's
      first toucher — itself gated on the frontier.

    The resulting invariant (checked by ``schedule-causality`` /
    ``migration-legality``): for any qubit, items of a later phase touching
    it never start before items of an earlier phase touching it retire, and
    migrations fall strictly between the phases they separate — per qubit,
    not globally, which is what lets migration teleports overlap with
    unrelated compute on both sides of the boundary.
    """
    cross: Dict[int, List[int]] = {}
    for index, phase in enumerate(draft.phases):
        items = draft.phase_items[index]
        local_preds = draft.local_preds[index]
        open_qubits = draft.open_qubits[index]
        offset = len(draft.items)
        touched: Dict[int, List[int]] = {}
        for local, item in enumerate(items):
            chosen = {p + offset for p in local_preds[local]}
            for qubit in open_qubits[local]:
                chosen.update(cross.get(qubit, ()))
            draft.preds.append(sorted(chosen))
            draft.items.append(item)
            draft.item_mappings.append(phase.mapping)
            draft.item_phases.append(index)
            for qubit in _item_qubits(item, draft.num_qubits):
                touched.setdefault(qubit, []).append(offset + local)
        if index < len(draft.phases) - 1:
            next_mapping = draft.phases[index + 1].mapping
            move_frontier: Dict[int, List[int]] = {}
            for move in draft.migrations[index]:
                waits = touched.get(move.qubit) or cross.get(move.qubit, [])
                move_frontier[move.qubit] = [len(draft.items)]
                draft.preds.append(sorted(set(waits)))
                draft.items.append(move)
                draft.item_mappings.append(next_mapping)
                draft.item_phases.append(index + 1)
            for qubit, indices in touched.items():
                cross[qubit] = indices
            cross.update(move_frontier)
