"""Node-to-node collective communication (the paper's Section 6 extension).

The main AutoComm flow restricts itself to qubit-to-node bursts because
near-term nodes only hold two communication qubits.  When more communication
qubits are available, neighbouring qubit-to-node blocks between the *same
pair of nodes* can be aggregated further into node-to-node collective
communications: the EPR pairs for the member blocks are prepared together
and the blocks execute back-to-back on the link, which removes the
serialisation the two-comm-qubit budget would otherwise impose and amortises
EPR preparation.

This module implements that extension as a post-pass over an assigned
program.  It does not change the communication-count metric (each member
block still consumes its own EPR pairs — the paper's accounting); the
benefit shows up in latency, and only materialises when the network offers
more than two communication qubits per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple, Union

from ..comm.blocks import CommBlock
from ..comm.cost import block_comm_count, block_latency
from ..hardware.network import QuantumNetwork
from ..ir.gates import Gate
from ..partition.mapping import QubitMapping
from .aggregation import ScheduleItem
from .assignment import AssignmentResult

__all__ = ["CollectiveBlock", "form_collectives", "collective_latency"]


@dataclass
class CollectiveBlock:
    """A group of burst blocks between the same pair of nodes.

    The member blocks execute over the same link using one communication
    qubit pair each, concurrently up to the link's communication-qubit
    budget.
    """

    node_a: int
    node_b: int
    blocks: List[CommBlock] = field(default_factory=list)

    @property
    def nodes(self) -> Tuple[int, int]:
        return (self.node_a, self.node_b)

    def __len__(self) -> int:
        return len(self.blocks)

    def touched_qubits(self) -> Tuple[int, ...]:
        qubits: Set[int] = set()
        for block in self.blocks:
            qubits.update(block.touched_qubits())
        return tuple(sorted(qubits))

    @property
    def gates(self) -> List[Gate]:
        return [gate for block in self.blocks for gate in block.gates]

    def comm_count(self, mapping: QubitMapping) -> int:
        """EPR pairs consumed — unchanged by collectivisation."""
        return sum(block_comm_count(block, mapping) for block in self.blocks)


def form_collectives(assignment: AssignmentResult,
                     min_members: int = 2) -> List[Union[ScheduleItem, CollectiveBlock]]:
    """Group adjacent same-link blocks of an assigned program into collectives.

    Two blocks join the same collective when they use the same pair of nodes
    and no intervening item touches any qubit of the open collective (so the
    grouping needs no reordering at all).  Collectives with fewer than
    ``min_members`` members are dissolved back into their single block.
    """
    items = list(assignment.items)
    out: List[Union[ScheduleItem, CollectiveBlock]] = []
    open_collective: Optional[CollectiveBlock] = None
    open_qubits: Set[int] = set()

    def close() -> None:
        nonlocal open_collective, open_qubits
        if open_collective is None:
            return
        if len(open_collective) >= min_members:
            out.append(open_collective)
        else:
            out.extend(open_collective.blocks)
        open_collective = None
        open_qubits = set()

    for item in items:
        if isinstance(item, CommBlock):
            link = tuple(sorted(item.nodes))
            if open_collective is not None and link == (open_collective.node_a,
                                                        open_collective.node_b):
                open_collective.blocks.append(item)
                open_qubits.update(item.touched_qubits())
                continue
            close()
            open_collective = CollectiveBlock(node_a=link[0], node_b=link[1],
                                              blocks=[item])
            open_qubits = set(item.touched_qubits())
            continue
        touched = set(item.qubits) if isinstance(item, Gate) else set()
        if open_collective is not None and touched & open_qubits:
            close()
        out.append(item)
    close()
    return out


def collective_latency(collective: CollectiveBlock, mapping: QubitMapping,
                       network: QuantumNetwork) -> float:
    """Latency of one collective on its link.

    Member blocks run concurrently in waves bounded by the link's
    communication-qubit budget (the smaller of the two endpoints); EPR
    preparation for a wave overlaps with the previous wave's execution, so
    only the first wave pays it on the critical path.
    """
    if not collective.blocks:
        return 0.0
    latency_model = network.latency
    budget = min(network.comm_capacity(collective.node_a),
                 network.comm_capacity(collective.node_b))
    budget = max(1, budget)
    durations = sorted((block_latency(block, mapping, latency_model)
                        for block in collective.blocks), reverse=True)
    waves: List[float] = []
    for index in range(0, len(durations), budget):
        waves.append(max(durations[index:index + budget]))
    prep = network.epr_latency(collective.node_a, collective.node_b)
    return prep + sum(waves)
