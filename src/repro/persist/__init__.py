"""Persistent artifacts: canonical serialization and a compile cache.

Compilation is fully deterministic in its inputs, so compiled programs are
cacheable artifacts.  This package provides the three layers that make
that real:

* :mod:`repro.persist.codec` — versioned canonical payloads
  (``to_payload``/``from_payload``) for circuits, networks (routing tables
  and link models included), qubit mappings, schedule plans and whole
  compiled programs, with JSON and deterministic-gzip writers;
* :mod:`repro.persist.fingerprint` — stable SHA-256 content addresses over
  the compilation inputs (circuit, network, mapping,
  :class:`~repro.core.pipeline.AutoCommConfig`);
* :mod:`repro.persist.cache` — the on-disk :class:`CompileCache`
  (atomic writes, corruption-tolerant loads, stats), wired into
  :meth:`repro.core.pipeline.AutoCommCompiler.compile` via the ``cache``
  argument, the ``REPRO_CACHE_DIR`` environment variable or the CLI's
  ``--cache-dir``/``--no-cache`` flags.

A cache hit skips the whole decompose→partition→aggregate→assign→schedule
pipeline; the loaded program is behaviourally identical to a fresh
compile — same metrics, analytical latency, deterministic replay and
Monte-Carlo streams (``tests/persist/`` proves it across the benchmark
matrix).
"""

from .cache import CACHE_DIR_ENV, CompileCache, resolve_cache
from .codec import (SCHEMA_VERSION, canonical_json, circuit_from_payload,
                    circuit_to_payload, dumps_program, load_program,
                    loads_program, mapping_from_payload, mapping_to_payload,
                    network_from_payload, network_to_payload,
                    plan_from_payload, plan_to_payload, program_from_payload,
                    program_to_payload, save_program)
from .fingerprint import (compile_fingerprint, fingerprint_circuit,
                          fingerprint_config, fingerprint_mapping,
                          fingerprint_network)

__all__ = [
    "SCHEMA_VERSION", "canonical_json",
    "circuit_to_payload", "circuit_from_payload",
    "network_to_payload", "network_from_payload",
    "mapping_to_payload", "mapping_from_payload",
    "plan_to_payload", "plan_from_payload",
    "program_to_payload", "program_from_payload",
    "save_program", "load_program", "dumps_program", "loads_program",
    "fingerprint_circuit", "fingerprint_network", "fingerprint_mapping",
    "fingerprint_config", "compile_fingerprint",
    "CompileCache", "resolve_cache", "CACHE_DIR_ENV",
]
