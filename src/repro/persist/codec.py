"""Canonical serialization of compiled artifacts.

Every compiler output this repository produces — :class:`~repro.ir.circuit.Circuit`,
:class:`~repro.core.pipeline.CompiledProgram` (static and phase-structured),
:class:`~repro.core.scheduling.SchedulePlan`,
:class:`~repro.hardware.network.QuantumNetwork` with its routing table and
link model — converts to a versioned, JSON-ready *payload* and back.  The
format is canonical by construction:

* every payload is a plain dict/list/scalar tree with explicit field lists
  (no ``__dict__`` dumps), so two structurally equal objects serialize to
  equal payloads;
* collections with unordered in-memory representations (latency overrides,
  link-model overrides, routes, histograms) are emitted in sorted key
  order — nothing depends on dict insertion, set iteration or
  ``PYTHONHASHSEED``;
* shared-object structure inside a program (the aggregation's blocks are a
  subset of its items; a static program's circuit/mapping are the
  aggregation's) is encoded by *index* or by a ``null`` back-reference, not
  duplicated, so deserialization rebuilds the same sharing the pipeline
  produced.

The behavioural contract (guarded by
``tests/persist/test_roundtrip_equivalence.py``): a deserialized program is
indistinguishable from the freshly compiled one to every consumer —
identical metrics and analytical latency, the same schedule plan, and
bit-identical deterministic-replay and Monte-Carlo streams.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..comm.blocks import CommBlock, CommPattern, CommScheme
from ..comm.cost import CommCost
from ..core.aggregation import AggregationResult
from ..core.assignment import AssignmentResult
from ..core.metrics import CompilationMetrics
from ..core.pipeline import CompiledPhase, CompiledProgram
from ..core.scheduling import (FusedTPChain, MigrationOp, SchedulePlan,
                               ScheduleResult, ScheduledOp)
from ..hardware.epr import CommResourceTracker
from ..hardware.links import LinkModel
from ..hardware.network import QuantumNetwork
from ..hardware.node import QuantumNode
from ..hardware.routing import EPRRoute, RoutingTable
from ..hardware.timing import LatencyModel
from ..ir.circuit import Circuit
from ..ir.gates import Gate
from ..obs.span import Span
from ..partition.mapping import QubitMapping

__all__ = [
    "SCHEMA_VERSION",
    "canonical_json",
    "circuit_to_payload", "circuit_from_payload",
    "network_to_payload", "network_from_payload",
    "mapping_to_payload", "mapping_from_payload",
    "plan_to_payload", "plan_from_payload",
    "program_to_payload", "program_from_payload",
    "save_program", "load_program",
    "dumps_program", "loads_program",
]

#: Version of the payload schema.  Bump on any change to field names,
#: orderings or semantics; the compile cache silently ignores entries
#: written under a different version.
#:
#: v2: zero-bubble boundaries — plans carry ``overlap``/``item_phases``,
#: schedules carry ``overlap``/``boundary_bubble``.
SCHEMA_VERSION = 2

Payload = Dict[str, Any]


def canonical_json(payload: Any) -> str:
    """The canonical JSON text of a payload: sorted keys, no whitespace.

    One payload has exactly one canonical text, which is what makes
    serialized artifacts content-addressable (the cache fingerprints hash
    this text).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# IR: gates, circuits
# ---------------------------------------------------------------------------

def gate_to_payload(gate: Gate) -> List[Any]:
    return [gate.name, list(gate.qubits), list(gate.params)]


def gate_from_payload(payload: List[Any]) -> Gate:
    # The payload is this module's own output (behind the schema check), so
    # every field was validated when the gate was first constructed;
    # from_trusted skips the per-gate re-validation that would otherwise
    # dominate artifact loads.
    name, qubits, params = payload
    return Gate.from_trusted(name, tuple(qubits),
                             tuple(map(float, params)) if params else ())


class GateTable:
    """Value-deduplicated gate rows shared across one program payload.

    The same gates appear several times in a compiled program (the circuit
    gate list, the burst blocks built from it, phased re-partitions);
    storing each distinct ``(name, qubits, params)`` once and referencing
    it by integer index roughly halves both the artifact size and the
    number of gate objects a load has to build.  Rows are appended in
    encoding-traversal order, which is itself canonical, so equal programs
    still produce equal bytes.
    """

    def __init__(self) -> None:
        self.rows: List[List[Any]] = []
        self._index: Dict[Any, int] = {}

    def ref(self, gate: Gate) -> int:
        key = (gate.name, gate.qubits, gate.params)
        position = self._index.get(key)
        if position is None:
            position = len(self.rows)
            self._index[key] = position
            self.rows.append(gate_to_payload(gate))
        return position


def _gate_entry(gate: Gate, table: Optional[GateTable]) -> Any:
    """A gate reference: a table index, or the inline payload standalone."""
    return gate_to_payload(gate) if table is None else table.ref(gate)


def _gate_from(entry: Any, gates: Sequence[Gate]) -> Gate:
    return gates[entry] if type(entry) is int else gate_from_payload(entry)


def circuit_to_payload(circuit: Circuit,
                       table: Optional[GateTable] = None) -> Payload:
    return {
        "num_qubits": circuit.num_qubits,
        "name": circuit.name,
        "gates": [_gate_entry(g, table) for g in circuit.gates],
    }


def circuit_from_payload(payload: Payload,
                         gates: Sequence[Gate] = ()) -> Circuit:
    circuit = Circuit(int(payload["num_qubits"]), name=str(payload["name"]))
    return circuit.extend_trusted(
        _gate_from(g, gates) for g in payload["gates"])


# ---------------------------------------------------------------------------
# Hardware: latency, nodes, links, routing, network
# ---------------------------------------------------------------------------

def latency_to_payload(latency: LatencyModel) -> Payload:
    # Only the five base fields: ``LatencyModel.as_dict`` also reports
    # derived quantities (t_teleport, ...), which the constructor rejects.
    return {"t_1q": latency.t_1q, "t_2q": latency.t_2q,
            "t_measure": latency.t_measure, "t_epr": latency.t_epr,
            "t_classical_bit": latency.t_classical_bit}


def latency_from_payload(payload: Payload) -> LatencyModel:
    return LatencyModel(t_1q=payload["t_1q"], t_2q=payload["t_2q"],
                        t_measure=payload["t_measure"],
                        t_epr=payload["t_epr"],
                        t_classical_bit=payload["t_classical_bit"])


def node_to_payload(node: QuantumNode) -> Payload:
    return {"index": node.index, "num_data_qubits": node.num_data_qubits,
            "num_comm_qubits": node.num_comm_qubits, "name": node.name}


def node_from_payload(payload: Payload) -> QuantumNode:
    return QuantumNode(index=payload["index"],
                       num_data_qubits=payload["num_data_qubits"],
                       num_comm_qubits=payload["num_comm_qubits"],
                       name=payload["name"])


def link_model_to_payload(model: LinkModel) -> Payload:
    # ``as_dict`` is already canonical: every field of every spec is
    # explicit and overrides are keyed by sorted "a-b" strings, so
    # ``from_spec`` reconstructs the model exactly.
    return model.as_dict()


def link_model_from_payload(payload: Payload) -> LinkModel:
    return LinkModel.from_spec(payload,
                               base_t_epr=payload["default"]["t_epr"])


def routing_to_payload(routing: RoutingTable) -> Payload:
    pairs = sorted(routing._routes)
    return {
        "num_nodes": routing.num_nodes,
        "physical_links": [list(link)
                           for link in sorted(routing.physical_links)],
        "weighted": routing.weighted,
        "weights": (None if routing._weights is None else
                    [[a, b, w] for (a, b), w in
                     sorted(routing._weights.items())]),
        "routes": [list(routing._routes[pair].path) for pair in pairs],
        "costs": [routing._costs[pair] for pair in pairs],
    }


def routing_from_payload(payload: Payload) -> RoutingTable:
    # Rebuild the table's internal state directly instead of re-running the
    # shortest-path search: the stored routes *are* the canonical output of
    # that search, and reconstruction must not depend on having the original
    # topology graph at hand.
    table = RoutingTable.__new__(RoutingTable)
    table.num_nodes = int(payload["num_nodes"])
    table.physical_links = frozenset(
        (int(a), int(b)) for a, b in payload["physical_links"])
    table.weighted = bool(payload["weighted"])
    weights = payload["weights"]
    table._weights = (None if weights is None else
                      {(int(a), int(b)): float(w) for a, b, w in weights})
    table._routes = {}
    table._costs = {}
    for path, cost in zip(payload["routes"], payload["costs"]):
        route = EPRRoute(path=tuple(int(n) for n in path))
        table._routes[(route.source, route.target)] = route
        table._costs[(route.source, route.target)] = cost
    return table


def network_to_payload(network: QuantumNetwork) -> Payload:
    return {
        "nodes": [node_to_payload(node) for node in network.nodes],
        "latency": latency_to_payload(network.latency),
        "epr_latency_overrides": [
            [a, b, value] for (a, b), value in
            sorted(network._epr_latency_overrides.items())],
        "topology_kind": network.topology_kind,
        "swap_overhead": network.swap_overhead,
        "routing": (None if network.routing is None
                    else routing_to_payload(network.routing)),
        "link_model": (None if network.link_model is None
                       else link_model_to_payload(network.link_model)),
    }


def network_from_payload(payload: Payload) -> QuantumNetwork:
    network = QuantumNetwork(
        [node_from_payload(n) for n in payload["nodes"]],
        latency=latency_from_payload(payload["latency"]))
    network._epr_latency_overrides = {
        (int(a), int(b)): float(value)
        for a, b, value in payload["epr_latency_overrides"]}
    network.topology_kind = str(payload["topology_kind"])
    network.swap_overhead = float(payload["swap_overhead"])
    if payload["routing"] is not None:
        network.routing = routing_from_payload(payload["routing"])
    if payload["link_model"] is not None:
        network.link_model = link_model_from_payload(payload["link_model"])
    return network


# ---------------------------------------------------------------------------
# Partitioning: qubit mappings
# ---------------------------------------------------------------------------

def mapping_to_payload(mapping: QubitMapping) -> List[int]:
    """Node per qubit, indexed by qubit — mappings cover 0..n-1 exactly."""
    return [mapping.node_of(q) for q in range(mapping.num_qubits)]


def mapping_from_payload(payload: List[int],
                         network: Optional[QuantumNetwork] = None
                         ) -> QubitMapping:
    # The payload is this module's own output: coverage and capacity were
    # validated when the mapping was first built, so skip re-validation —
    # phased programs rebuild one mapping per phase on every load.
    return QubitMapping.from_trusted(dict(enumerate(payload)),
                                     network=network)


# ---------------------------------------------------------------------------
# Communication blocks and pass results
# ---------------------------------------------------------------------------

def block_to_payload(block: CommBlock,
                     table: Optional[GateTable] = None) -> Payload:
    return {
        "hub_qubit": block.hub_qubit,
        "hub_node": block.hub_node,
        "remote_node": block.remote_node,
        "gates": [_gate_entry(g, table) for g in block.gates],
        "scheme": None if block.scheme is None else block.scheme.value,
    }


def block_from_payload(payload: Payload,
                       gates: Sequence[Gate] = ()) -> CommBlock:
    scheme = payload["scheme"]
    return CommBlock(hub_qubit=payload["hub_qubit"],
                     hub_node=payload["hub_node"],
                     remote_node=payload["remote_node"],
                     gates=[_gate_from(g, gates) for g in payload["gates"]],
                     scheme=None if scheme is None else CommScheme(scheme))


def _items_to_payload(items, table: Optional[GateTable] = None
                      ) -> List[List[Any]]:
    """Tagged item list: ``["g", gate]`` or ``["b", block]`` in order."""
    out: List[List[Any]] = []
    for item in items:
        if isinstance(item, CommBlock):
            out.append(["b", block_to_payload(item, table)])
        else:
            out.append(["g", _gate_entry(item, table)])
    return out


def _items_from_payload(payload: List[List[Any]],
                        gates: Sequence[Gate] = ()) -> List[Any]:
    return [block_from_payload(value, gates) if tag == "b"
            else _gate_from(value, gates)
            for tag, value in payload]


def aggregation_to_payload(aggregation: AggregationResult,
                           circuit_ref: Optional[Circuit] = None,
                           mapping_ref: Optional[QubitMapping] = None,
                           table: Optional[GateTable] = None
                           ) -> Payload:
    """Serialize one aggregation result.

    ``circuit_ref``/``mapping_ref`` are the enclosing program's objects;
    when the aggregation shares them (the pipeline threads the same circuit
    and mapping object through its passes) a ``null`` back-reference is
    stored instead of a duplicate payload.  Blocks are stored as *indices*
    into the item list — the pipeline invariant ``blocks`` ⊆ ``items`` (same
    objects, item order) is thereby preserved across a round trip.
    """
    block_indices = []
    block_cursor = 0
    for index, item in enumerate(aggregation.items):
        if (block_cursor < len(aggregation.blocks)
                and aggregation.blocks[block_cursor] is item):
            block_indices.append(index)
            block_cursor += 1
    if block_cursor != len(aggregation.blocks):
        raise ValueError("aggregation blocks are not an ordered subset of "
                         "its items; cannot serialize canonically")
    return {
        "circuit": (None if aggregation.circuit is circuit_ref
                    else circuit_to_payload(aggregation.circuit, table)),
        "mapping": (None if aggregation.mapping is mapping_ref
                    else mapping_to_payload(aggregation.mapping)),
        "items": _items_to_payload(aggregation.items, table),
        "block_indices": block_indices,
    }


def aggregation_from_payload(payload: Payload,
                             circuit_ref: Optional[Circuit],
                             mapping_ref: Optional[QubitMapping],
                             network: Optional[QuantumNetwork],
                             gates: Sequence[Gate] = ()
                             ) -> AggregationResult:
    circuit = (circuit_ref if payload["circuit"] is None
               else circuit_from_payload(payload["circuit"], gates))
    mapping = (mapping_ref if payload["mapping"] is None
               else mapping_from_payload(payload["mapping"], network))
    items = _items_from_payload(payload["items"], gates)
    blocks = [items[i] for i in payload["block_indices"]]
    return AggregationResult(circuit=circuit, mapping=mapping,
                             items=items, blocks=blocks)


def cost_to_payload(cost: CommCost) -> Payload:
    return cost.as_dict()


def cost_from_payload(payload: Payload) -> CommCost:
    return CommCost(total_comm=payload["total_comm"],
                    tp_comm=payload["tp_comm"],
                    cat_comm=payload["cat_comm"],
                    peak_remote_cx=payload["peak_remote_cx"],
                    total_epr_pairs=payload["total_epr_pairs"],
                    total_epr_latency=payload["total_epr_latency"])


def assignment_to_payload(assignment: AssignmentResult) -> Payload:
    """Serialize the assignment's own state (cost + histograms).

    The block list is not stored: ``assign_communications`` returns
    ``blocks = list(aggregation.blocks)`` (the same objects, schemes set in
    place), and each block's scheme travels inside its own payload — the
    deserializer rebuilds the list from the aggregation.
    """
    if assignment.blocks != assignment.aggregation.blocks:
        raise ValueError("assignment blocks differ from the aggregation's; "
                         "cannot serialize canonically")
    return {
        "cost": cost_to_payload(assignment.cost),
        "pattern_histogram": {
            pattern.value: count for pattern, count in
            sorted(assignment.pattern_histogram.items(),
                   key=lambda kv: kv[0].value)},
        "scheme_histogram": {
            scheme.value: count for scheme, count in
            sorted(assignment.scheme_histogram.items(),
                   key=lambda kv: kv[0].value)},
    }


def assignment_from_payload(payload: Payload,
                            aggregation: AggregationResult
                            ) -> AssignmentResult:
    return AssignmentResult(
        aggregation=aggregation,
        blocks=list(aggregation.blocks),
        cost=cost_from_payload(payload["cost"]),
        pattern_histogram={CommPattern(value): count for value, count in
                           payload["pattern_histogram"].items()},
        scheme_histogram={CommScheme(value): count for value, count in
                          payload["scheme_histogram"].items()},
    )


# ---------------------------------------------------------------------------
# Scheduling: ops, results, migrations, plans
# ---------------------------------------------------------------------------

def scheduled_op_to_payload(op: ScheduledOp) -> List[Any]:
    return [op.index, op.kind, op.start, op.end, list(op.nodes),
            op.num_remote_gates, op.num_items]


def scheduled_op_from_payload(payload: List[Any]) -> ScheduledOp:
    index, kind, start, end, nodes, num_remote_gates, num_items = payload
    return ScheduledOp(index, kind, start, end, tuple(nodes),
                       num_remote_gates, num_items)


def schedule_to_payload(schedule: ScheduleResult) -> Payload:
    return {
        "ops": [scheduled_op_to_payload(op) for op in schedule.ops],
        "latency": schedule.latency,
        "num_comm_ops": schedule.num_comm_ops,
        "num_fused_chains": schedule.num_fused_chains,
        "mode": schedule.mode,
        "overlap": schedule.overlap,
        "boundary_bubble": schedule.boundary_bubble,
        "reservations": [[r.node, r.slot, r.start, r.end, r.label]
                         for r in schedule.resources.reservations],
    }


def schedule_from_payload(payload: Payload,
                          network: QuantumNetwork) -> ScheduleResult:
    # Re-book every reservation on its recorded slot in original order: the
    # original bookings were feasible, so explicit-slot re-booking succeeds
    # and reproduces the tracker's schedules and reservation log exactly.
    tracker = CommResourceTracker(network)
    for node, slot, start, end, label in payload["reservations"]:
        tracker.reserve(node, start, end, slot=slot, label=label)
    return ScheduleResult(
        ops=[scheduled_op_from_payload(op) for op in payload["ops"]],
        latency=payload["latency"],
        resources=tracker,
        num_comm_ops=payload["num_comm_ops"],
        num_fused_chains=payload["num_fused_chains"],
        mode=payload["mode"],
        overlap=payload["overlap"],
        boundary_bubble=payload["boundary_bubble"],
    )


def migration_to_payload(move: MigrationOp) -> List[int]:
    return [move.qubit, move.source, move.target]


def migration_from_payload(payload: List[int]) -> MigrationOp:
    qubit, source, target = payload
    return MigrationOp(qubit=qubit, source=source, target=target)


def plan_to_payload(plan: SchedulePlan) -> Payload:
    """Serialize a standalone schedule plan (items, dependencies, caches dropped)."""
    items: List[List[Any]] = []
    for item in plan.items:
        if isinstance(item, CommBlock):
            items.append(["b", block_to_payload(item)])
        elif isinstance(item, FusedTPChain):
            items.append(["c", [block_to_payload(b) for b in item.blocks]])
        elif isinstance(item, MigrationOp):
            items.append(["m", migration_to_payload(item)])
        else:
            items.append(["g", gate_to_payload(item)])
    mappings_payload = None
    indices_payload = None
    if plan.item_mappings is not None:
        # Phased plans repeat a handful of mapping objects across many
        # items; store each distinct mapping once (identity-deduplicated
        # with ``is`` — never ``id()``) plus a per-item index list.
        unique: List[QubitMapping] = []
        indices: List[int] = []
        for mapping in plan.item_mappings:
            position = None
            for seen_index, seen in enumerate(unique):
                if seen is mapping:
                    position = seen_index
                    break
            if position is None:
                position = len(unique)
                unique.append(mapping)
            indices.append(position)
        mappings_payload = [mapping_to_payload(m) for m in unique]
        indices_payload = indices
    return {
        "schema": SCHEMA_VERSION,
        "kind": "schedule-plan",
        "items": items,
        "preds": [list(plist) for plist in plan.preds],
        "num_fused_chains": plan.num_fused_chains,
        "burst": plan.burst,
        "overlap": plan.overlap,
        "item_phases": (None if plan.item_phases is None
                        else list(plan.item_phases)),
        "mappings": mappings_payload,
        "item_mapping_indices": indices_payload,
    }


def plan_from_payload(payload: Payload,
                      network: Optional[QuantumNetwork] = None
                      ) -> SchedulePlan:
    _check_schema(payload, "schedule-plan")
    items: List[Any] = []
    for tag, value in payload["items"]:
        if tag == "b":
            items.append(block_from_payload(value))
        elif tag == "c":
            items.append(FusedTPChain(
                blocks=[block_from_payload(b) for b in value]))
        elif tag == "m":
            items.append(migration_from_payload(value))
        else:
            items.append(gate_from_payload(value))
    item_mappings = None
    if payload["mappings"] is not None:
        unique = [mapping_from_payload(m, network)
                  for m in payload["mappings"]]
        item_mappings = [unique[i] for i in payload["item_mapping_indices"]]
    # Rebuild through __setstate__ — the same path unpickling takes — so the
    # lazy ``_succs``/``_profiles`` caches start empty and rebuild on demand.
    plan = SchedulePlan.__new__(SchedulePlan)
    plan.__setstate__({
        "items": items,
        "preds": [list(plist) for plist in payload["preds"]],
        "num_fused_chains": payload["num_fused_chains"],
        "burst": payload["burst"],
        "overlap": payload["overlap"],
        "item_phases": (None if payload["item_phases"] is None
                        else [int(p) for p in payload["item_phases"]]),
        "item_mappings": item_mappings,
    })
    return plan


# ---------------------------------------------------------------------------
# Compiled programs
# ---------------------------------------------------------------------------

def _phase_to_payload(phase: CompiledPhase, circuit_ref: Circuit,
                      mapping_ref: QubitMapping,
                      table: Optional[GateTable] = None) -> Payload:
    return {
        "index": phase.index,
        "mapping": (None if phase.mapping is mapping_ref
                    else mapping_to_payload(phase.mapping)),
        "aggregation": aggregation_to_payload(
            phase.aggregation, circuit_ref=circuit_ref,
            mapping_ref=phase.mapping, table=table),
        "assignment": assignment_to_payload(phase.assignment),
    }


def _phase_from_payload(payload: Payload, circuit_ref: Circuit,
                        mapping_ref: QubitMapping,
                        network: QuantumNetwork,
                        gates: Sequence[Gate] = ()) -> CompiledPhase:
    mapping = (mapping_ref if payload["mapping"] is None
               else mapping_from_payload(payload["mapping"], network))
    aggregation = aggregation_from_payload(
        payload["aggregation"], circuit_ref=circuit_ref,
        mapping_ref=mapping, network=network, gates=gates)
    assignment = assignment_from_payload(payload["assignment"], aggregation)
    return CompiledPhase(index=payload["index"], mapping=mapping,
                         aggregation=aggregation, assignment=assignment)


def _blocks_mode(program: CompiledProgram) -> str:
    """How ``program.blocks`` relates to the rest of the artifact."""
    if program.phases is not None:
        flattened = [block for phase in program.phases
                     for block in phase.blocks]
        if (len(flattened) == len(program.blocks)
                and all(a is b for a, b in zip(flattened, program.blocks))):
            return "phases"
    if program.assignment is not None:
        if (len(program.assignment.blocks) == len(program.blocks)
                and all(a is b for a, b in zip(program.assignment.blocks,
                                               program.blocks))):
            return "assignment"
    return "explicit"


def program_to_payload(program: CompiledProgram) -> Payload:
    blocks_mode = _blocks_mode(program)
    # One deduplicated gate table for the whole payload; every gate in the
    # circuit, blocks and phases becomes an integer reference into it.  The
    # dict literal below fixes the encoding-traversal order (circuit first),
    # which in turn fixes the table's row order canonically.
    table = GateTable()
    payload: Payload = {
        "schema": SCHEMA_VERSION,
        "kind": "compiled-program",
        "name": program.name,
        "compiler": program.compiler,
        "remap": program.remap,
        "circuit": circuit_to_payload(program.circuit, table),
        "mapping": mapping_to_payload(program.mapping),
        "network": network_to_payload(program.network),
        "metrics": program.metrics.as_dict(),
        "aggregation": (None if program.aggregation is None
                        else aggregation_to_payload(
                            program.aggregation,
                            circuit_ref=program.circuit,
                            mapping_ref=program.mapping,
                            table=table)),
        "assignment": (None if program.assignment is None
                       else assignment_to_payload(program.assignment)),
        "schedule": (None if program.schedule is None
                     else schedule_to_payload(program.schedule)),
        "phases": (None if program.phases is None
                   else [_phase_to_payload(phase, program.circuit,
                                           program.mapping, table)
                         for phase in program.phases]),
        "migrations": (None if program.migrations is None
                       else [[migration_to_payload(m) for m in boundary]
                             for boundary in program.migrations]),
        "spans": (None if program.spans is None
                  else program.spans.as_dict()),
        "blocks_mode": blocks_mode,
        "blocks": ([block_to_payload(b, table) for b in program.blocks]
                   if blocks_mode == "explicit" else None),
    }
    payload["gate_table"] = table.rows
    return payload


def _check_schema(payload: Payload, kind: str) -> None:
    if not isinstance(payload, dict):
        raise ValueError(f"payload is {type(payload).__name__}, not an "
                         "object")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"payload schema {payload.get('schema')!r} does not match "
            f"supported version {SCHEMA_VERSION}")
    if payload.get("kind") != kind:
        raise ValueError(f"payload kind {payload.get('kind')!r} is not "
                         f"{kind!r}")


def program_from_payload(payload: Payload) -> CompiledProgram:
    _check_schema(payload, "compiled-program")
    gates = [gate_from_payload(row)
             for row in payload.get("gate_table") or ()]
    network = network_from_payload(payload["network"])
    circuit = circuit_from_payload(payload["circuit"], gates)
    mapping = mapping_from_payload(payload["mapping"], network)
    aggregation = None
    if payload["aggregation"] is not None:
        aggregation = aggregation_from_payload(
            payload["aggregation"], circuit_ref=circuit,
            mapping_ref=mapping, network=network, gates=gates)
    assignment = None
    if payload["assignment"] is not None:
        if aggregation is None:
            raise ValueError("assignment payload without an aggregation")
        assignment = assignment_from_payload(payload["assignment"],
                                             aggregation)
    schedule = None
    if payload["schedule"] is not None:
        schedule = schedule_from_payload(payload["schedule"], network)
    phases = None
    if payload["phases"] is not None:
        phases = [_phase_from_payload(p, circuit, mapping, network, gates)
                  for p in payload["phases"]]
    migrations = None
    if payload["migrations"] is not None:
        migrations = [[migration_from_payload(m) for m in boundary]
                      for boundary in payload["migrations"]]
    blocks_mode = payload["blocks_mode"]
    if blocks_mode == "phases":
        if phases is None:
            raise ValueError("blocks_mode 'phases' without phase payloads")
        blocks = [block for phase in phases for block in phase.blocks]
    elif blocks_mode == "assignment":
        if assignment is None:
            raise ValueError("blocks_mode 'assignment' without an "
                             "assignment payload")
        blocks = assignment.blocks
    else:
        blocks = [block_from_payload(b, gates) for b in payload["blocks"]]
    metrics = CompilationMetrics.from_dict(payload["metrics"])
    spans = (None if payload["spans"] is None
             else Span.from_dict(payload["spans"]))
    return CompiledProgram(
        name=payload["name"],
        compiler=payload["compiler"],
        circuit=circuit,
        mapping=mapping,
        network=network,
        blocks=blocks,
        metrics=metrics,
        aggregation=aggregation,
        assignment=assignment,
        schedule=schedule,
        remap=payload["remap"],
        phases=phases,
        migrations=migrations,
        spans=spans,
    )


# ---------------------------------------------------------------------------
# Writers: canonical JSON text and deterministic compressed binary
# ---------------------------------------------------------------------------

def dumps_program(program: CompiledProgram, *, spans: bool = True) -> bytes:
    """Compressed canonical bytes of one program (deterministic).

    ``gzip`` with ``mtime=0`` so equal programs always produce equal bytes —
    a requirement for content-addressed storage and for byte-level cache
    tests.  ``spans=False`` drops the observability span tree from the
    payload (the compile cache stores entries this way: a cache hit gets a
    fresh cache-lookup span tree from the pipeline, so the original
    compile's spans would be dead weight in every entry).
    """
    payload = program_to_payload(program)
    if not spans:
        payload["spans"] = None
    text = canonical_json(payload)
    buffer = io.BytesIO()
    with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as stream:
        stream.write(text.encode("utf-8"))
    return buffer.getvalue()


def loads_program(data: bytes) -> CompiledProgram:
    text = gzip.decompress(data).decode("utf-8")
    return program_from_payload(json.loads(text))


def save_program(program: CompiledProgram, path: Union[str, Path]) -> Path:
    """Write one program as an artifact file.

    ``.json`` suffixes get readable canonical JSON; anything else (the
    ``.rpz`` convention) gets the deterministic compressed binary form.
    """
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(canonical_json(program_to_payload(program)) + "\n")
    else:
        path.write_bytes(dumps_program(program))
    return path


def load_program(path: Union[str, Path]) -> CompiledProgram:
    """Read a program artifact written by :func:`save_program`."""
    path = Path(path)
    if path.suffix == ".json":
        return program_from_payload(json.loads(path.read_text()))
    return loads_program(path.read_bytes())
