"""On-disk content-addressed compile cache.

One entry per :func:`~repro.persist.fingerprint.compile_fingerprint`, stored
as ``<fingerprint>.rpz`` — deterministic gzip (``mtime=0``) of the program's
canonical JSON payload wrapped in an envelope carrying the schema version
and the fingerprint.  Design points:

* **Atomic writes.**  Entries are written to a temp file in the cache
  directory and ``os.replace``-d into place, so concurrent writers of the
  same key are safe (last rename wins; both wrote identical bytes) and a
  crashed writer never leaves a half-entry under a live name.
* **Corruption tolerance.**  A truncated, garbage or wrong-schema entry is
  *never served*: ``load`` verifies the envelope's schema version and
  fingerprint and decodes the full program; any failure counts as a miss
  (with a warning for corrupt bytes, silently for version skew) so callers
  fall back to recompiling.
* **Observability.**  Hits/misses/stores/corruptions are counted in a
  per-process :class:`~repro.obs.metrics.MetricsRegistry` and accumulated
  in a ``stats.log`` append-only sidecar (one short line per event, so
  concurrent writers interleave instead of clobbering and the hit path
  never pays a rename) so ``repro.cli cache stats`` can report across
  processes.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Dict, Optional, Union

from ..core.pipeline import CompiledProgram
from ..obs.metrics import MetricsRegistry
from .codec import dumps_program, loads_program

__all__ = ["CompileCache", "resolve_cache", "CACHE_DIR_ENV"]

#: Environment variable enabling the cache without code or CLI changes.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Cache-entry file suffix ("repro program, zipped").
ENTRY_SUFFIX = ".rpz"

#: Errors that mark an entry unreadable rather than the process broken.
_CORRUPTION_ERRORS = (OSError, EOFError, ValueError, KeyError, TypeError,
                      IndexError)

_COUNTER_NAMES = ("hits", "misses", "stores", "corrupt")


class CompileCache:
    """Content-addressed store of compiled programs under one directory."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------- layout

    def path_for(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}{ENTRY_SUFFIX}"

    def _stats_path(self) -> Path:
        return self.directory / "stats.log"

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    # ------------------------------------------------------------ load/store

    def load(self, fingerprint: str) -> Optional[CompiledProgram]:
        """The cached program for ``fingerprint``, or ``None`` on a miss.

        Never raises on bad entries: anything unreadable — truncated bytes,
        garbage, schema skew, fingerprint mismatch — degrades to a miss so
        the caller recompiles.
        """
        path = self.path_for(fingerprint)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self._count("misses")
            return None
        except OSError as exc:
            warnings.warn(f"compile cache: unreadable entry {path}: {exc}",
                          RuntimeWarning, stacklevel=2)
            self._count("corrupt", "misses")
            return None
        try:
            program = loads_program(data)
        except _CORRUPTION_ERRORS as exc:
            if _is_schema_skew(data):
                # A valid entry from another schema version: expected after
                # upgrades, not worth a warning — just recompile.
                self._count("misses")
                return None
            warnings.warn(f"compile cache: corrupt entry {path} "
                          f"({type(exc).__name__}: {exc}); recompiling",
                          RuntimeWarning, stacklevel=2)
            self._count("corrupt", "misses")
            return None
        self._count("hits")
        return program

    def store(self, fingerprint: str, program: CompiledProgram) -> Path:
        """Atomically persist ``program`` under ``fingerprint``.

        Entries are stored without the compile's span tree: a cache hit
        gets a fresh cache-lookup span tree from the pipeline, so storing
        the original spans would bloat every entry with dead diagnostics.
        """
        path = self.path_for(fingerprint)
        data = dumps_program(program, spans=False)
        handle, temp_name = tempfile.mkstemp(dir=self.directory,
                                             prefix=".store-",
                                             suffix=ENTRY_SUFFIX)
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._count("stores")
        return path

    # -------------------------------------------------------------- counters

    def _count(self, *names: str) -> None:
        for name in names:
            self.metrics.counter(f"cache.{name}").inc()
        self._bump_sidecar(names)

    def counters(self) -> Dict[str, int]:
        """This process's hit/miss/store/corrupt counts."""
        return {name: int(self.metrics.counter(f"cache.{name}").value)
                for name in _COUNTER_NAMES}

    def _bump_sidecar(self, names) -> None:
        # One short appended line per event: O_APPEND keeps concurrent
        # writers from clobbering each other, and the cache-hit path never
        # pays a temp-file + rename just to bump a diagnostic counter.
        try:
            with open(self._stats_path(), "a") as stream:
                stream.write(" ".join(names) + "\n")
        except OSError:  # pragma: no cover - diagnostics must never break
            pass

    def _sidecar_totals(self) -> Dict[str, int]:
        totals = dict.fromkeys(_COUNTER_NAMES, 0)
        try:
            lines = self._stats_path().read_text().splitlines()
        except OSError:
            return totals
        for line in lines:
            for name in line.split():
                if name in totals:
                    totals[name] += 1
        return totals

    # ----------------------------------------------------------------- stats

    def entries(self) -> list:
        """Sorted entry paths currently in the cache."""
        return sorted(self.directory.glob(f"*{ENTRY_SUFFIX}"))

    def stats(self) -> Dict[str, object]:
        """Disk usage plus cumulative counters (sidecar-backed)."""
        entry_paths = self.entries()
        total_bytes = 0
        for path in entry_paths:
            try:
                total_bytes += path.stat().st_size
            except OSError:  # pragma: no cover - raced deletion
                pass
        return {
            "directory": str(self.directory),
            "entries": len(entry_paths),
            "total_bytes": total_bytes,
            "counters": self._sidecar_totals(),
        }

    def clear(self) -> int:
        """Delete every entry (and the stats sidecar); returns entries removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - raced deletion
                pass
        try:
            self._stats_path().unlink()
        except OSError:
            pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompileCache({str(self.directory)!r})"


def _is_schema_skew(data: bytes) -> bool:
    """True when ``data`` is a well-formed entry of another schema version."""
    import gzip

    from .codec import SCHEMA_VERSION
    try:
        payload = json.loads(gzip.decompress(data).decode("utf-8"))
    except _CORRUPTION_ERRORS:
        return False
    return (isinstance(payload, dict) and "schema" in payload
            and payload.get("schema") != SCHEMA_VERSION)


def resolve_cache(cache: Union["CompileCache", str, Path, None, bool] = None
                  ) -> Optional[CompileCache]:
    """Resolve a caller-supplied cache argument against the environment.

    * a :class:`CompileCache` instance passes through;
    * a path builds a cache there;
    * ``False`` disables caching even when :data:`CACHE_DIR_ENV` is set
      (the CLI's ``--no-cache``);
    * ``None`` consults :data:`CACHE_DIR_ENV` and returns ``None`` when it
      is unset.
    """
    if cache is False:
        return None
    if isinstance(cache, CompileCache):
        return cache
    if cache is not None and cache is not True:
        return CompileCache(cache)
    env = os.environ.get(CACHE_DIR_ENV)
    return CompileCache(env) if env else None
