"""Content-addressed cache keys for compilations.

Compilation is fully deterministic in (circuit, network, initial mapping,
:class:`~repro.core.pipeline.AutoCommConfig`), so one stable hash of those
inputs addresses the compiled artifact.  Each fingerprint is the SHA-256
hex digest of the input's *canonical payload JSON* (sorted keys, explicit
fields — see :mod:`repro.persist.codec`), which makes it

* stable across process restarts and machines (no ``hash()``/``id()``,
  nothing ``PYTHONHASHSEED``-dependent — ``tools/lint_determinism.py``
  enforces this for the whole package);
* sensitive to *every* behavioural input: gate parameters, topology and
  link overrides, the remap mode, ``phase_blocks``, and the circuit name
  (program and metrics names derive from it).
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..core.pipeline import AutoCommConfig
from ..hardware.network import QuantumNetwork
from ..ir.circuit import Circuit
from ..partition.mapping import QubitMapping
from .codec import (SCHEMA_VERSION, canonical_json, circuit_to_payload,
                    mapping_to_payload, network_to_payload)

__all__ = ["fingerprint_circuit", "fingerprint_network",
           "fingerprint_mapping", "fingerprint_config",
           "compile_fingerprint"]


def _digest(kind: str, payload: object) -> str:
    text = canonical_json({"schema": SCHEMA_VERSION, "kind": kind,
                           "payload": payload})
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint_circuit(circuit: Circuit) -> str:
    """Structural hash of a circuit (gates, qubit count, name)."""
    return _digest("circuit", circuit_to_payload(circuit))


def fingerprint_network(network: QuantumNetwork) -> str:
    """Hash of the full machine model: nodes, latency, topology, routing, links."""
    return _digest("network", network_to_payload(network))


def fingerprint_mapping(mapping: Optional[QubitMapping]) -> str:
    """Hash of an initial qubit placement (``None`` = let OEE place)."""
    return _digest("mapping",
                   None if mapping is None else mapping_to_payload(mapping))


def fingerprint_config(config: AutoCommConfig) -> str:
    """Hash of every pipeline knob (each field listed explicitly)."""
    return _digest("config", {
        "use_commutation": config.use_commutation,
        "cat_only": config.cat_only,
        "schedule_strategy": config.schedule_strategy,
        "decompose": config.decompose,
        "max_sweeps": config.max_sweeps,
        "remap": config.remap,
        "phase_blocks": config.phase_blocks,
        "overlap": config.overlap,
        "phase_sizing": config.phase_sizing,
    })


def compile_fingerprint(circuit: Circuit, network: QuantumNetwork,
                        mapping: Optional[QubitMapping] = None,
                        config: Optional[AutoCommConfig] = None) -> str:
    """The content address of one compilation's output."""
    return _digest("compile", {
        "circuit": fingerprint_circuit(circuit),
        "network": fingerprint_network(network),
        "mapping": fingerprint_mapping(mapping),
        "config": fingerprint_config(config or AutoCommConfig()),
    })
