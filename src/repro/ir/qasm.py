"""Minimal OpenQASM 2.0 import/export.

Only the gate set registered in :mod:`repro.ir.gates` is supported, with a
single quantum register ``q`` and a single classical register ``c``.  This is
enough to exchange the benchmark circuits with other toolchains and to keep a
textual artifact of compiled programs.
"""

from __future__ import annotations

import math
import re
from typing import List, Optional

from .circuit import Circuit
from .gates import Gate, is_supported_gate

__all__ = ["to_qasm", "from_qasm", "QasmError"]


class QasmError(ValueError):
    """Raised for malformed or unsupported QASM input."""


_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

# Gates whose QASM name differs from ours.
_EXPORT_NAME = {"p": "u1", "cp": "cu1"}
_IMPORT_NAME = {"u1": "p", "cu1": "cp", "cnot": "cx", "toffoli": "ccx"}


def to_qasm(circuit: Circuit) -> str:
    """Serialise a circuit to OpenQASM 2.0 text."""
    lines: List[str] = [_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{circuit.num_qubits}];")
    num_measures = sum(1 for g in circuit if g.name == "measure")
    if num_measures:
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit:
        lines.append(_gate_to_qasm(gate))
    return "\n".join(lines) + "\n"


def _gate_to_qasm(gate: Gate) -> str:
    if gate.name == "barrier":
        qubits = ",".join(f"q[{q}]" for q in gate.qubits)
        return f"barrier {qubits};"
    if gate.name == "measure":
        q = gate.qubits[0]
        return f"measure q[{q}] -> c[{q}];"
    if gate.name == "reset":
        return f"reset q[{gate.qubits[0]}];"
    name = _EXPORT_NAME.get(gate.name, gate.name)
    params = ""
    if gate.params:
        params = "(" + ",".join(_format_angle(p) for p in gate.params) + ")"
    qubits = ",".join(f"q[{q}]" for q in gate.qubits)
    return f"{name}{params} {qubits};"


def _format_angle(value: float) -> str:
    """Render an angle, using pi fractions when exact to keep files readable."""
    if value == 0:
        return "0"
    for denom in (1, 2, 3, 4, 6, 8, 16, 32, 64, 128, 256):
        for sign in (1, -1):
            if abs(value - sign * math.pi / denom) < 1e-12:
                prefix = "-" if sign < 0 else ""
                return f"{prefix}pi/{denom}" if denom != 1 else f"{prefix}pi"
    return repr(float(value))


_GATE_RE = re.compile(
    r"^\s*(?P<name>[a-zA-Z_][\w]*)\s*(?:\((?P<params>[^)]*)\))?\s*(?P<args>[^;]*);"
)
_QUBIT_RE = re.compile(r"q\[(\d+)\]")


def from_qasm(text: str) -> Circuit:
    """Parse OpenQASM 2.0 text into a :class:`Circuit`.

    Supports a single ``qreg`` named ``q`` and the registered gate set.
    """
    num_qubits: Optional[int] = None
    gates: List[Gate] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//", 1)[0].strip()
        if not line:
            continue
        if line.startswith("OPENQASM") or line.startswith("include"):
            continue
        if line.startswith("qreg"):
            match = re.search(r"qreg\s+q\[(\d+)\]", line)
            if not match:
                raise QasmError(f"unsupported qreg declaration: {line!r}")
            num_qubits = int(match.group(1))
            continue
        if line.startswith("creg"):
            continue
        if num_qubits is None:
            raise QasmError("gate encountered before qreg declaration")
        if line.startswith("measure"):
            match = _QUBIT_RE.search(line)
            if not match:
                raise QasmError(f"cannot parse measure: {line!r}")
            gates.append(Gate("measure", (int(match.group(1)),)))
            continue
        match = _GATE_RE.match(line)
        if not match:
            raise QasmError(f"cannot parse line: {line!r}")
        name = match.group("name").lower()
        name = _IMPORT_NAME.get(name, name)
        if not is_supported_gate(name):
            raise QasmError(f"unsupported gate {name!r} in line {line!r}")
        params_text = match.group("params")
        params = tuple(_parse_angle(p) for p in params_text.split(",")) if params_text else ()
        qubits = tuple(int(m) for m in _QUBIT_RE.findall(match.group("args")))
        if name == "barrier":
            gates.append(Gate("barrier", qubits))
        else:
            gates.append(Gate(name, qubits, params))
    if num_qubits is None:
        raise QasmError("no qreg declaration found")
    return Circuit(num_qubits, gates)


def _parse_angle(text: str) -> float:
    """Evaluate a restricted arithmetic expression over pi."""
    expr = text.strip().lower().replace("pi", repr(math.pi))
    if not re.fullmatch(r"[0-9eE+\-*/. ()]+", expr):
        raise QasmError(f"unsupported angle expression {text!r}")
    try:
        return float(eval(expr, {"__builtins__": {}}, {}))  # noqa: S307 - sanitised above
    except Exception as exc:  # pragma: no cover - defensive
        raise QasmError(f"cannot evaluate angle {text!r}") from exc
