"""Decomposition of multi-qubit gates into the CX + single-qubit basis.

AutoComm's burst analysis is defined over circuits "compiled to the CX+U3
basis" (Section 3.2 of the paper), so every benchmark circuit is first pushed
through :func:`decompose_to_cx`.  The decompositions used here are the
textbook ones (Nielsen & Chuang / Qiskit equivalents); each is covered by a
unitary-equivalence test in ``tests/ir/test_decompose.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from .circuit import Circuit
from .gates import Gate

__all__ = ["decompose_to_cx", "decompose_gate", "mct_v_chain", "CX_BASIS"]

#: Gate names that survive decomposition untouched.
CX_BASIS = frozenset({
    "cx", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
    "rx", "ry", "rz", "p", "u3", "id", "measure", "reset", "barrier",
})


def decompose_to_cx(circuit: Circuit) -> Circuit:
    """Return an equivalent circuit using only CX and single-qubit gates."""
    out = Circuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        for sub in decompose_gate(gate):
            out.append(sub)
    return out


def decompose_gate(gate: Gate) -> List[Gate]:
    """Decompose a single gate into the CX + single-qubit basis."""
    if gate.name in CX_BASIS:
        return [gate]
    handler = _HANDLERS.get(gate.name)
    if handler is None:
        raise ValueError(f"no CX-basis decomposition registered for {gate.name!r}")
    return handler(gate)


# ---------------------------------------------------------------------------
# Individual decompositions
# ---------------------------------------------------------------------------

def _cz(gate: Gate) -> List[Gate]:
    c, t = gate.qubits
    return [Gate("h", (t,)), Gate("cx", (c, t)), Gate("h", (t,))]


def _cy(gate: Gate) -> List[Gate]:
    c, t = gate.qubits
    return [Gate("sdg", (t,)), Gate("cx", (c, t)), Gate("s", (t,))]


def _ch(gate: Gate) -> List[Gate]:
    # Standard CH decomposition (up to global phase exact):
    # CH = (I ⊗ Ry(pi/4)) CX (I ⊗ Ry(-pi/4)) with an extra S/T structure;
    # we use the exact ABC construction for controlled-U with U = H.
    c, t = gate.qubits
    return [
        Gate("s", (t,)),
        Gate("h", (t,)),
        Gate("t", (t,)),
        Gate("cx", (c, t)),
        Gate("tdg", (t,)),
        Gate("h", (t,)),
        Gate("sdg", (t,)),
    ]


def _crz(gate: Gate) -> List[Gate]:
    theta = gate.params[0]
    c, t = gate.qubits
    return [
        Gate("rz", (t,), (theta / 2,)),
        Gate("cx", (c, t)),
        Gate("rz", (t,), (-theta / 2,)),
        Gate("cx", (c, t)),
    ]


def _cp(gate: Gate) -> List[Gate]:
    theta = gate.params[0]
    c, t = gate.qubits
    return [
        Gate("p", (c,), (theta / 2,)),
        Gate("p", (t,), (theta / 2,)),
        Gate("cx", (c, t)),
        Gate("p", (t,), (-theta / 2,)),
        Gate("cx", (c, t)),
    ]


def _crx(gate: Gate) -> List[Gate]:
    theta = gate.params[0]
    c, t = gate.qubits
    return [
        Gate("h", (t,)),
        Gate("rz", (t,), (theta / 2,)),
        Gate("cx", (c, t)),
        Gate("rz", (t,), (-theta / 2,)),
        Gate("cx", (c, t)),
        Gate("h", (t,)),
    ]


def _cry(gate: Gate) -> List[Gate]:
    theta = gate.params[0]
    c, t = gate.qubits
    return [
        Gate("ry", (t,), (theta / 2,)),
        Gate("cx", (c, t)),
        Gate("ry", (t,), (-theta / 2,)),
        Gate("cx", (c, t)),
    ]


def _swap(gate: Gate) -> List[Gate]:
    a, b = gate.qubits
    return [Gate("cx", (a, b)), Gate("cx", (b, a)), Gate("cx", (a, b))]


def _rzz(gate: Gate) -> List[Gate]:
    theta = gate.params[0]
    a, b = gate.qubits
    return [
        Gate("cx", (a, b)),
        Gate("rz", (b,), (theta,)),
        Gate("cx", (a, b)),
    ]


def _rxx(gate: Gate) -> List[Gate]:
    theta = gate.params[0]
    a, b = gate.qubits
    return [
        Gate("h", (a,)),
        Gate("h", (b,)),
        Gate("cx", (a, b)),
        Gate("rz", (b,), (theta,)),
        Gate("cx", (a, b)),
        Gate("h", (a,)),
        Gate("h", (b,)),
    ]


def _ccx(gate: Gate) -> List[Gate]:
    """Standard 6-CX Toffoli decomposition."""
    a, b, c = gate.qubits
    return [
        Gate("h", (c,)),
        Gate("cx", (b, c)),
        Gate("tdg", (c,)),
        Gate("cx", (a, c)),
        Gate("t", (c,)),
        Gate("cx", (b, c)),
        Gate("tdg", (c,)),
        Gate("cx", (a, c)),
        Gate("t", (b,)),
        Gate("t", (c,)),
        Gate("h", (c,)),
        Gate("cx", (a, b)),
        Gate("t", (a,)),
        Gate("tdg", (b,)),
        Gate("cx", (a, b)),
    ]


def _ccz(gate: Gate) -> List[Gate]:
    a, b, c = gate.qubits
    return [Gate("h", (c,))] + _ccx(Gate("ccx", (a, b, c))) + [Gate("h", (c,))]


def _cswap(gate: Gate) -> List[Gate]:
    c, a, b = gate.qubits
    out = [Gate("cx", (b, a))]
    out.extend(_ccx(Gate("ccx", (c, a, b))))
    out.append(Gate("cx", (b, a)))
    return out


_HANDLERS: Dict[str, Callable[[Gate], List[Gate]]] = {
    "cz": _cz,
    "cy": _cy,
    "ch": _ch,
    "crz": _crz,
    "cp": _cp,
    "crx": _crx,
    "cry": _cry,
    "swap": _swap,
    "rzz": _rzz,
    "rxx": _rxx,
    "ccx": _ccx,
    "ccz": _ccz,
    "cswap": _cswap,
}


# ---------------------------------------------------------------------------
# Multi-controlled Toffoli construction (used by the MCTR benchmark)
# ---------------------------------------------------------------------------

def mct_v_chain(controls: Sequence[int], target: int,
                ancillas: Sequence[int]) -> Circuit:
    """Build an n-controlled X via the V-chain of Toffoli gates.

    Requires ``len(ancillas) >= len(controls) - 2`` clean ancilla qubits.  The
    construction computes the AND of the controls into the ancilla chain,
    applies a final Toffoli onto the target and uncomputes the chain, which is
    the standard linear-depth MCT used in compiler toolchains.

    The returned circuit is expressed in ``ccx``/``cx`` gates (not yet pushed
    to the CX basis) and spans ``max(all indices) + 1`` qubits.
    """
    controls = list(controls)
    ancillas = list(ancillas)
    n = len(controls)
    if n == 0:
        raise ValueError("need at least one control")
    num_qubits = max([target] + controls + ancillas) + 1
    circuit = Circuit(num_qubits, name="mct")
    if n == 1:
        circuit.cx(controls[0], target)
        return circuit
    if n == 2:
        circuit.ccx(controls[0], controls[1], target)
        return circuit
    if len(ancillas) < n - 2:
        raise ValueError(f"V-chain MCT with {n} controls needs {n - 2} ancillas, "
                         f"got {len(ancillas)}")

    # Compute chain
    circuit.ccx(controls[0], controls[1], ancillas[0])
    for i in range(2, n - 1):
        circuit.ccx(controls[i], ancillas[i - 2], ancillas[i - 1])
    # Apply
    circuit.ccx(controls[n - 1], ancillas[n - 3], target)
    # Uncompute chain
    for i in reversed(range(2, n - 1)):
        circuit.ccx(controls[i], ancillas[i - 2], ancillas[i - 1])
    circuit.ccx(controls[0], controls[1], ancillas[0])
    return circuit
