"""Gate commutation analysis.

AutoComm's aggregation pass reorders gates to expose burst communication, so
it needs a reliable answer to "do these two gates commute?".  We combine

* fast structural rules (the X-rotation-centred rules of Figure 7 in the
  paper plus the standard diagonal/control/target rules), and
* an exact matrix check on the joint unitary as a fallback.

Every decided pair — rule-based *and* matrix-based — is memoised on a
canonical ``(name, params, overlap-pattern)`` key, so repeated queries over
large circuits (the aggregation and scheduling passes ask the same
structural question for thousands of concrete gate pairs) collapse to one
dict lookup.  The matrix fallback keeps the engine *sound* for every
registered gate pair; the rules only make the first occurrence of each
pattern fast.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from .gates import Gate, gate_spec

__all__ = [
    "commutes",
    "commutes_with_all",
    "commutes_through",
    "clear_commutation_cache",
    "commutation_cache_stats",
    "set_commutation_cache_enabled",
]

_ATOL = 1e-9

# Pair-level memo: canonical (names, params, relative qubit overlap) -> bool.
# Bounded defensively; a full clear on overflow is simpler than LRU eviction
# and the bound is far above what any benchmark circuit generates.
_PAIR_CACHE: Dict[tuple, bool] = {}
_PAIR_CACHE_MAX = 1 << 20
_pair_cache_enabled = True
_STATS = {"hits": 0, "misses": 0, "rule_decided": 0, "matrix_decided": 0}

# Single-qubit gates that commute with being the *control* of a CX/CZ/CRZ/CP
# (i.e. diagonal gates) and with being the *target* of a CX (X-axis gates).
_Z_AXIS = frozenset({"z", "s", "sdg", "t", "tdg", "rz", "p", "id"})
_X_AXIS = frozenset({"x", "sx", "sxdg", "rx", "id"})

# Two-qubit controlled gates, and which of their qubits is control/target.
_CONTROLLED_2Q = frozenset({"cx", "cz", "cy", "ch", "crz", "crx", "cry", "cp"})
# Diagonal two-qubit gates: commute with any Z-axis single-qubit gate on
# either operand and with each other.
_DIAGONAL_2Q = frozenset({"cz", "crz", "cp", "rzz"})


def clear_commutation_cache() -> None:
    """Clear the memoised commutation results (pair-level and matrix-level)."""
    _PAIR_CACHE.clear()
    _matrix_commutes_cached.cache_clear()
    for key in _STATS:
        _STATS[key] = 0


def commutation_cache_stats() -> Dict[str, int]:
    """Hit/miss statistics of the pair-level commutation cache.

    ``hits``/``misses`` count lookups of the pair-level cache;
    ``rule_decided``/``matrix_decided`` split the misses by which engine
    settled them.  ``size`` is the number of memoised pair patterns and
    ``matrix_cache_size`` the entries of the underlying matrix memo.
    """
    info = _matrix_commutes_cached.cache_info()
    return {**_STATS, "size": len(_PAIR_CACHE),
            "matrix_cache_size": info.currsize}


def set_commutation_cache_enabled(enabled: bool) -> bool:
    """Toggle the pair-level cache (the matrix memo is always on).

    Returns the previous setting.  Used by the perf-regression benchmarks to
    time the uncached reference path; results are identical either way.
    """
    global _pair_cache_enabled
    previous = _pair_cache_enabled
    _pair_cache_enabled = bool(enabled)
    return previous


def _pair_key(a: Gate, b: Gate) -> tuple:
    """Canonical (name, params, relative-overlap) key of an ordered gate pair.

    Qubits are renumbered by their rank within the pair's qubit union, so
    every concrete pair with the same structural overlap shares one entry.
    """
    union = sorted(a._qubit_set | b._qubit_set)
    index = {q: i for i, q in enumerate(union)}
    return (a.name, a.params, tuple(index[q] for q in a.qubits),
            b.name, b.params, tuple(index[q] for q in b.qubits))


def commutes(gate_a: Gate, gate_b: Gate) -> bool:
    """Return True when ``gate_a`` and ``gate_b`` commute.

    Barriers, measurements and resets are treated as commuting with nothing
    that shares a qubit with them (conservative).

    Decision tiers, cheapest first: disjoint qubits; zero-allocation
    structural rules (identity, diagonal pairs, axis-aligned single-qubit
    gates, control/target rules, CX-CX); then the pair-level cache over the
    overlap-pattern rules and the exact matrix check.  The fast rules are
    *not* routed through the cache because a single dict probe on the
    canonical key costs more than they do.
    """
    if gate_a._qubit_set.isdisjoint(gate_b._qubit_set):
        return True
    if not gate_a._is_unitary or not gate_b._is_unitary:
        return False

    # The commonest fast rules are inlined: one extra function call per
    # query is measurable at the aggregation pass's call volume.
    name_a = gate_a.name
    name_b = gate_b.name
    if name_a == "cx" and name_b == "cx":
        qa = gate_a.qubits
        qb = gate_b.qubits
        # Same control or same target -> commute; control/target collision -> not.
        if qa == qb:
            return True
        if qa[0] == qb[0] and qa[1] != qb[1]:
            return True
        return qa[1] == qb[1] and qa[0] != qb[0]
    if gate_a._diagonal and gate_b._diagonal:
        return True

    rule = _fast_rules(gate_a, gate_b)
    if rule is not None:
        return rule

    if not _pair_cache_enabled:
        rule = _overlap_rules(gate_a, gate_b)
        if rule is not None:
            return rule
        return _matrix_commutes(gate_a, gate_b)

    key = _pair_key(gate_a, gate_b)
    cached = _PAIR_CACHE.get(key)
    if cached is not None:
        _STATS["hits"] += 1
        return cached
    _STATS["misses"] += 1
    rule = _overlap_rules(gate_a, gate_b)
    if rule is not None:
        _STATS["rule_decided"] += 1
        result = rule
    else:
        _STATS["matrix_decided"] += 1
        result = _matrix_commutes(gate_a, gate_b)
    if len(_PAIR_CACHE) >= _PAIR_CACHE_MAX:  # pragma: no cover - defensive
        _PAIR_CACHE.clear()
    _PAIR_CACHE[key] = result
    return result


def commutes_with_all(gate: Gate, gates: Iterable[Gate]) -> bool:
    """True when ``gate`` commutes with every gate in ``gates``."""
    return all(commutes(gate, other) for other in gates)


def commutes_through(gate: Gate, gates: Sequence[Gate]) -> bool:
    """True when ``gate`` can be moved across the whole sequence ``gates``.

    Because commutation is checked pairwise this is sufficient (though not
    necessary) for the reordering ``[gates..., gate] -> [gate, gates...]`` to
    preserve the circuit semantics.
    """
    return commutes_with_all(gate, gates)


# ---------------------------------------------------------------------------
# Rule-based fast paths
# ---------------------------------------------------------------------------

def _fast_rules(a: Gate, b: Gate) -> Optional[bool]:
    """Structural rules that never inspect the overlap pattern.

    These are cheaper than one cache probe, so :func:`commutes` runs them
    before touching the pair-level cache.  The CX-CX and diagonal-pair
    rules are inlined in :func:`commutes` itself and therefore absent here.
    Returns None when undecided.
    """
    # Identity commutes with everything.
    if a.name == "id" or b.name == "id":
        return True

    if a._is_single:
        if b._is_single:
            axis_a = a._axis
            if axis_a is not None and axis_a == b._axis:
                return True
            return None
        if b._is_multi:
            return _single_multi(a, b)
        return None
    if b._is_single:
        if a._is_multi:
            return _single_multi(b, a)
        return None

    return None


def _overlap_rules(a: Gate, b: Gate) -> Optional[bool]:
    """Rules that depend on which qubits the two gates share.

    Only reached when the inlined fast rules and :func:`_fast_rules` are
    undecided; the verdict (or the matrix fallback's) is memoised by
    :func:`commutes` on the canonical overlap-pattern key.  Returns None
    when undecided.
    """
    if a._is_two and b._is_two:
        return _two_two(a, b, a._qubit_set & b._qubit_set)
    return None


def _single_multi(single: Gate, multi: Gate) -> Optional[bool]:
    q = single.qubits[0]
    if multi.name in _CONTROLLED_2Q or multi.name in ("ccx", "ccz", "cswap"):
        controls, targets = _controls_targets(multi)
        if q in controls:
            # A Z-axis gate commutes with any control.
            if single.name in _Z_AXIS:
                return True
            return None
        if q in targets:
            if multi.name in ("cx", "ccx") and single.name in _X_AXIS:
                return True
            if multi.name in ("cz", "crz", "cp", "ccz") and single.name in _Z_AXIS:
                return True
            return None
    if multi.name == "rzz" and single.name in _Z_AXIS:
        return True
    if multi.name == "rxx" and single.name in _X_AXIS:
        return True
    return None


def _controls_targets(gate: Gate) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Return the (controls, targets) qubit split of a controlled gate."""
    if gate.name in _CONTROLLED_2Q:
        return (gate.qubits[0],), (gate.qubits[1],)
    if gate.name in ("ccx", "ccz"):
        return gate.qubits[:2], gate.qubits[2:]
    if gate.name == "cswap":
        return gate.qubits[:1], gate.qubits[1:]
    return (), gate.qubits


def _two_two(a: Gate, b: Gate, shared: set) -> Optional[bool]:
    # CX-CX and diagonal-diagonal pairs are decided by the rules inlined in
    # commutes() and never reach this function.
    if {a.name, b.name} <= (_CONTROLLED_2Q | {"rzz"}):
        # A diagonal 2q gate commutes with a controlled gate when every shared
        # qubit sits on the controlled gate's control and the diagonal gate is
        # Z-like on that qubit (always true for cz/crz/cp/rzz).
        diag, other = (a, b) if a.name in _DIAGONAL_2Q else (b, a)
        if diag.name in _DIAGONAL_2Q and other.name in _CONTROLLED_2Q:
            controls, _ = _controls_targets(other)
            if shared <= set(controls):
                return True
            if other.name in _DIAGONAL_2Q:
                return True
            return None
    return None


# ---------------------------------------------------------------------------
# Matrix fallback
# ---------------------------------------------------------------------------

def _matrix_commutes(a: Gate, b: Gate) -> bool:
    union = sorted(set(a.qubits) | set(b.qubits))
    index = {q: i for i, q in enumerate(union)}
    key = (
        a.name, a.params, tuple(index[q] for q in a.qubits),
        b.name, b.params, tuple(index[q] for q in b.qubits),
        len(union),
    )
    return _matrix_commutes_cached(key)


@lru_cache(maxsize=200_000)
def _matrix_commutes_cached(key) -> bool:
    (name_a, params_a, pos_a, name_b, params_b, pos_b, n) = key
    mat_a = _embed(name_a, params_a, pos_a, n)
    mat_b = _embed(name_b, params_b, pos_b, n)
    return bool(np.allclose(mat_a @ mat_b, mat_b @ mat_a, atol=_ATOL))


def _embed(name: str, params: Tuple[float, ...], positions: Tuple[int, ...],
           num_qubits: int) -> np.ndarray:
    """Embed a gate unitary acting on ``positions`` into ``num_qubits`` qubits."""
    gate_u = gate_spec(name).unitary(*params)
    k = len(positions)
    dim = 2 ** num_qubits
    full = np.zeros((dim, dim), dtype=complex)
    # Build by iterating over computational basis states: for each basis state
    # of the full register, apply the gate to the sub-register.
    gate_dim = 2 ** k
    for basis in range(dim):
        bits = [(basis >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
        sub = 0
        for pos in positions:
            sub = (sub << 1) | bits[pos]
        column = gate_u[:, sub]
        for sub_out in range(gate_dim):
            amp = column[sub_out]
            if amp == 0:
                continue
            out_bits = list(bits)
            for i, pos in enumerate(positions):
                out_bits[pos] = (sub_out >> (k - 1 - i)) & 1
            out_index = 0
            for bit in out_bits:
                out_index = (out_index << 1) | bit
            full[out_index, basis] += amp
    return full
