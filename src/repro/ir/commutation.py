"""Gate commutation analysis.

AutoComm's aggregation pass reorders gates to expose burst communication, so
it needs a reliable answer to "do these two gates commute?".  We combine

* fast structural rules (the X-rotation-centred rules of Figure 7 in the
  paper plus the standard diagonal/control/target rules), and
* an exact matrix check on the joint unitary as a fallback, memoised on the
  gate names, parameters and relative qubit overlap.

The matrix fallback keeps the engine *sound* for every registered gate pair;
the rules only make the common cases fast.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .gates import Gate, gate_spec

__all__ = [
    "commutes",
    "commutes_with_all",
    "commutes_through",
    "clear_commutation_cache",
]

_ATOL = 1e-9

# Single-qubit gates that commute with being the *control* of a CX/CZ/CRZ/CP
# (i.e. diagonal gates) and with being the *target* of a CX (X-axis gates).
_Z_AXIS = frozenset({"z", "s", "sdg", "t", "tdg", "rz", "p", "id"})
_X_AXIS = frozenset({"x", "sx", "sxdg", "rx", "id"})

# Two-qubit controlled gates, and which of their qubits is control/target.
_CONTROLLED_2Q = frozenset({"cx", "cz", "cy", "ch", "crz", "crx", "cry", "cp"})
# Diagonal two-qubit gates: commute with any Z-axis single-qubit gate on
# either operand and with each other.
_DIAGONAL_2Q = frozenset({"cz", "crz", "cp", "rzz"})


def clear_commutation_cache() -> None:
    """Clear the memoised matrix-based commutation results."""
    _matrix_commutes_cached.cache_clear()


def commutes(gate_a: Gate, gate_b: Gate) -> bool:
    """Return True when ``gate_a`` and ``gate_b`` commute.

    Barriers, measurements and resets are treated as commuting with nothing
    that shares a qubit with them (conservative).
    """
    shared = set(gate_a.qubits) & set(gate_b.qubits)
    if not shared:
        return True
    if not gate_a.is_unitary or not gate_b.is_unitary:
        return False

    rule = _rule_based(gate_a, gate_b, shared)
    if rule is not None:
        return rule
    return _matrix_commutes(gate_a, gate_b)


def commutes_with_all(gate: Gate, gates: Iterable[Gate]) -> bool:
    """True when ``gate`` commutes with every gate in ``gates``."""
    return all(commutes(gate, other) for other in gates)


def commutes_through(gate: Gate, gates: Sequence[Gate]) -> bool:
    """True when ``gate`` can be moved across the whole sequence ``gates``.

    Because commutation is checked pairwise this is sufficient (though not
    necessary) for the reordering ``[gates..., gate] -> [gate, gates...]`` to
    preserve the circuit semantics.
    """
    return commutes_with_all(gate, gates)


# ---------------------------------------------------------------------------
# Rule-based fast paths
# ---------------------------------------------------------------------------

def _rule_based(a: Gate, b: Gate, shared: set) -> Optional[bool]:
    """Try to decide commutation structurally. Returns None when undecided."""
    # Identity commutes with everything.
    if a.name == "id" or b.name == "id":
        return True

    # Two diagonal gates always commute.
    if a.is_diagonal and b.is_diagonal:
        return True

    if a.is_single_qubit and b.is_single_qubit:
        return _single_single(a, b)

    if a.is_single_qubit and b.is_multi_qubit:
        return _single_multi(a, b)
    if b.is_single_qubit and a.is_multi_qubit:
        return _single_multi(b, a)

    if a.is_two_qubit and b.is_two_qubit:
        return _two_two(a, b, shared)

    return None


def _single_single(a: Gate, b: Gate) -> Optional[bool]:
    axis_a, axis_b = a.axis, b.axis
    if axis_a is not None and axis_a == axis_b:
        return True
    return None


def _single_multi(single: Gate, multi: Gate) -> Optional[bool]:
    q = single.qubits[0]
    if multi.name in _CONTROLLED_2Q or multi.name in ("ccx", "ccz", "cswap"):
        controls, targets = _controls_targets(multi)
        if q in controls:
            # A Z-axis gate commutes with any control.
            if single.name in _Z_AXIS:
                return True
            return None
        if q in targets:
            if multi.name in ("cx", "ccx") and single.name in _X_AXIS:
                return True
            if multi.name in ("cz", "crz", "cp", "ccz") and single.name in _Z_AXIS:
                return True
            return None
    if multi.name == "rzz" and single.name in _Z_AXIS:
        return True
    if multi.name == "rxx" and single.name in _X_AXIS:
        return True
    return None


def _controls_targets(gate: Gate) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Return the (controls, targets) qubit split of a controlled gate."""
    if gate.name in _CONTROLLED_2Q:
        return (gate.qubits[0],), (gate.qubits[1],)
    if gate.name in ("ccx", "ccz"):
        return gate.qubits[:2], gate.qubits[2:]
    if gate.name == "cswap":
        return gate.qubits[:1], gate.qubits[1:]
    return (), gate.qubits


def _two_two(a: Gate, b: Gate, shared: set) -> Optional[bool]:
    if a.name in _DIAGONAL_2Q and b.name in _DIAGONAL_2Q:
        return True
    if a.name == "cx" and b.name == "cx":
        # Same control or same target -> commute; control/target collision -> not.
        if a.qubits == b.qubits:
            return True
        if a.qubits[0] == b.qubits[0] and a.qubits[1] != b.qubits[1]:
            return True
        if a.qubits[1] == b.qubits[1] and a.qubits[0] != b.qubits[0]:
            return True
        return False
    if {a.name, b.name} <= (_CONTROLLED_2Q | {"rzz"}):
        # A diagonal 2q gate commutes with a controlled gate when every shared
        # qubit sits on the controlled gate's control and the diagonal gate is
        # Z-like on that qubit (always true for cz/crz/cp/rzz).
        diag, other = (a, b) if a.name in _DIAGONAL_2Q else (b, a)
        if diag.name in _DIAGONAL_2Q and other.name in _CONTROLLED_2Q:
            controls, _ = _controls_targets(other)
            if shared <= set(controls):
                return True
            if other.name in _DIAGONAL_2Q:
                return True
            return None
    return None


# ---------------------------------------------------------------------------
# Matrix fallback
# ---------------------------------------------------------------------------

def _matrix_commutes(a: Gate, b: Gate) -> bool:
    union = sorted(set(a.qubits) | set(b.qubits))
    index = {q: i for i, q in enumerate(union)}
    key = (
        a.name, a.params, tuple(index[q] for q in a.qubits),
        b.name, b.params, tuple(index[q] for q in b.qubits),
        len(union),
    )
    return _matrix_commutes_cached(key)


@lru_cache(maxsize=200_000)
def _matrix_commutes_cached(key) -> bool:
    (name_a, params_a, pos_a, name_b, params_b, pos_b, n) = key
    mat_a = _embed(name_a, params_a, pos_a, n)
    mat_b = _embed(name_b, params_b, pos_b, n)
    return bool(np.allclose(mat_a @ mat_b, mat_b @ mat_a, atol=_ATOL))


def _embed(name: str, params: Tuple[float, ...], positions: Tuple[int, ...],
           num_qubits: int) -> np.ndarray:
    """Embed a gate unitary acting on ``positions`` into ``num_qubits`` qubits."""
    gate_u = gate_spec(name).unitary(*params)
    k = len(positions)
    dim = 2 ** num_qubits
    full = np.zeros((dim, dim), dtype=complex)
    # Build by iterating over computational basis states: for each basis state
    # of the full register, apply the gate to the sub-register.
    gate_dim = 2 ** k
    for basis in range(dim):
        bits = [(basis >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
        sub = 0
        for pos in positions:
            sub = (sub << 1) | bits[pos]
        column = gate_u[:, sub]
        for sub_out in range(gate_dim):
            amp = column[sub_out]
            if amp == 0:
                continue
            out_bits = list(bits)
            for i, pos in enumerate(positions):
                out_bits[pos] = (sub_out >> (k - 1 - i)) & 1
            out_index = 0
            for bit in out_bits:
                out_index = (out_index << 1) | bit
            full[out_index, basis] += amp
    return full
