"""Quantum circuit container.

A :class:`Circuit` is an ordered list of :class:`~repro.ir.gates.Gate`
instructions over ``num_qubits`` globally-indexed qubits.  It supports the
usual construction helpers (``circuit.cx(0, 1)``), composition, inversion,
depth/width accounting and qubit-usage queries.  The distributed-computing
layers treat circuits purely as gate lists; the heavy analysis (dependency
graphs, commutation) lives in :mod:`repro.ir.dag` and
:mod:`repro.ir.commutation`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .gates import Gate

__all__ = ["Circuit"]


class Circuit:
    """An ordered sequence of gates on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, gates: Optional[Iterable[Gate]] = None,
                 name: str = "circuit") -> None:
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: List[Gate] = []
        if gates is not None:
            for gate in gates:
                self.append(gate)

    # ------------------------------------------------------------------ basics

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The instruction list as an immutable tuple."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._gates == other._gates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Circuit(name={self.name!r}, num_qubits={self.num_qubits}, "
                f"num_gates={len(self._gates)})")

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Return a shallow copy (gates are immutable, so this is safe)."""
        return Circuit(self.num_qubits, self._gates, name=name or self.name)

    # --------------------------------------------------------------- mutation

    def append(self, gate: Gate) -> "Circuit":
        """Append a gate, validating its qubit indices against the circuit."""
        if not isinstance(gate, Gate):
            raise TypeError(f"expected Gate, got {type(gate).__name__}")
        if gate.qubits and max(gate.qubits) >= self.num_qubits:
            raise ValueError(
                f"gate {gate!r} addresses qubit {max(gate.qubits)} but circuit "
                f"has only {self.num_qubits} qubits"
            )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        for gate in gates:
            self.append(gate)
        return self

    def extend_trusted(self, gates: Iterable[Gate]) -> "Circuit":
        """Bulk-append gates already validated against this circuit.

        For decode paths (:mod:`repro.persist`) replaying gate lists that
        were validated when first constructed; skips the per-gate type and
        qubit-range checks of :meth:`append`, which dominate rebuilding
        circuits with tens of thousands of gates.
        """
        self._gates.extend(gates)
        return self

    def add(self, name: str, qubits: Sequence[int],
            params: Sequence[float] = ()) -> "Circuit":
        """Append a gate by name."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    # Convenience constructors for the common gate set -------------------------

    def x(self, q: int) -> "Circuit":
        return self.add("x", [q])

    def y(self, q: int) -> "Circuit":
        return self.add("y", [q])

    def z(self, q: int) -> "Circuit":
        return self.add("z", [q])

    def h(self, q: int) -> "Circuit":
        return self.add("h", [q])

    def s(self, q: int) -> "Circuit":
        return self.add("s", [q])

    def sdg(self, q: int) -> "Circuit":
        return self.add("sdg", [q])

    def t(self, q: int) -> "Circuit":
        return self.add("t", [q])

    def tdg(self, q: int) -> "Circuit":
        return self.add("tdg", [q])

    def sx(self, q: int) -> "Circuit":
        return self.add("sx", [q])

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.add("rx", [q], [theta])

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.add("ry", [q], [theta])

    def rz(self, theta: float, q: int) -> "Circuit":
        return self.add("rz", [q], [theta])

    def p(self, theta: float, q: int) -> "Circuit":
        return self.add("p", [q], [theta])

    def u3(self, theta: float, phi: float, lam: float, q: int) -> "Circuit":
        return self.add("u3", [q], [theta, phi, lam])

    def cx(self, control: int, target: int) -> "Circuit":
        return self.add("cx", [control, target])

    def cz(self, control: int, target: int) -> "Circuit":
        return self.add("cz", [control, target])

    def cy(self, control: int, target: int) -> "Circuit":
        return self.add("cy", [control, target])

    def ch(self, control: int, target: int) -> "Circuit":
        return self.add("ch", [control, target])

    def crz(self, theta: float, control: int, target: int) -> "Circuit":
        return self.add("crz", [control, target], [theta])

    def crx(self, theta: float, control: int, target: int) -> "Circuit":
        return self.add("crx", [control, target], [theta])

    def cry(self, theta: float, control: int, target: int) -> "Circuit":
        return self.add("cry", [control, target], [theta])

    def cp(self, theta: float, control: int, target: int) -> "Circuit":
        return self.add("cp", [control, target], [theta])

    def swap(self, a: int, b: int) -> "Circuit":
        return self.add("swap", [a, b])

    def rzz(self, theta: float, a: int, b: int) -> "Circuit":
        return self.add("rzz", [a, b], [theta])

    def rxx(self, theta: float, a: int, b: int) -> "Circuit":
        return self.add("rxx", [a, b], [theta])

    def ccx(self, c1: int, c2: int, target: int) -> "Circuit":
        return self.add("ccx", [c1, c2, target])

    def ccz(self, c1: int, c2: int, target: int) -> "Circuit":
        return self.add("ccz", [c1, c2, target])

    def cswap(self, control: int, a: int, b: int) -> "Circuit":
        return self.add("cswap", [control, a, b])

    def measure(self, q: int) -> "Circuit":
        return self.add("measure", [q])

    def reset(self, q: int) -> "Circuit":
        return self.add("reset", [q])

    def barrier(self, qubits: Optional[Sequence[int]] = None) -> "Circuit":
        qubits = tuple(qubits) if qubits is not None else tuple(range(self.num_qubits))
        return self.append(Gate("barrier", qubits))

    # ------------------------------------------------------------- composition

    def compose(self, other: "Circuit",
                qubit_map: Optional[Dict[int, int]] = None) -> "Circuit":
        """Append another circuit's gates onto this one.

        Args:
            other: the circuit to append.
            qubit_map: optional map from ``other``'s qubit indices to this
                circuit's indices.  Identity when omitted.
        """
        if qubit_map is None:
            if other.num_qubits > self.num_qubits:
                raise ValueError("composed circuit has more qubits than target")
            for gate in other:
                self.append(gate)
        else:
            for gate in other:
                self.append(gate.remap(qubit_map))
        return self

    def inverse(self) -> "Circuit":
        """Return the inverse circuit (gates inverted, order reversed)."""
        inv = Circuit(self.num_qubits, name=f"{self.name}_dg")
        for gate in reversed(self._gates):
            if gate.is_barrier:
                inv.append(gate)
            else:
                inv.append(gate.inverse())
        return inv

    def remapped(self, qubit_map: Dict[int, int],
                 num_qubits: Optional[int] = None) -> "Circuit":
        """Return a copy with every gate's qubits re-indexed via ``qubit_map``."""
        new_n = num_qubits if num_qubits is not None else self.num_qubits
        out = Circuit(new_n, name=self.name)
        for gate in self._gates:
            out.append(gate.remap(qubit_map))
        return out

    def without_barriers(self) -> "Circuit":
        """Return a copy with all barrier instructions removed."""
        return Circuit(self.num_qubits,
                       (g for g in self._gates if not g.is_barrier),
                       name=self.name)

    # ---------------------------------------------------------------- analysis

    def count_ops(self) -> Dict[str, int]:
        """Return a gate-name -> count histogram."""
        return dict(Counter(g.name for g in self._gates))

    def num_two_qubit_gates(self) -> int:
        return sum(1 for g in self._gates if g.is_multi_qubit)

    def num_cx_gates(self) -> int:
        return sum(1 for g in self._gates if g.name == "cx")

    def used_qubits(self) -> Tuple[int, ...]:
        """Return the sorted tuple of qubits touched by at least one gate."""
        used = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return tuple(sorted(used))

    def depth(self) -> int:
        """Circuit depth counting every non-barrier instruction as one layer."""
        level: Dict[int, int] = defaultdict(int)
        depth = 0
        for gate in self._gates:
            if gate.is_barrier:
                continue
            start = max((level[q] for q in gate.qubits), default=0)
            for q in gate.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def two_qubit_depth(self) -> int:
        """Depth counting only multi-qubit gates."""
        level: Dict[int, int] = defaultdict(int)
        depth = 0
        for gate in self._gates:
            if not gate.is_multi_qubit:
                continue
            start = max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def interaction_pairs(self) -> Counter:
        """Histogram of unordered qubit pairs joined by multi-qubit gates."""
        pairs: Counter = Counter()
        for gate in self._gates:
            if gate.is_multi_qubit:
                qubits = sorted(gate.qubits)
                for i in range(len(qubits)):
                    for j in range(i + 1, len(qubits)):
                        pairs[(qubits[i], qubits[j])] += 1
        return pairs

    def summary(self) -> Dict[str, object]:
        """Small dictionary of headline statistics (used by reports/tests)."""
        return {
            "name": self.name,
            "num_qubits": self.num_qubits,
            "num_gates": len(self._gates),
            "num_2q_gates": self.num_two_qubit_gates(),
            "num_cx": self.num_cx_gates(),
            "depth": self.depth(),
        }
