"""Quantum circuit intermediate representation.

This subpackage provides the circuit substrate the AutoComm passes operate
on: gates, circuits, a dependency DAG, CX-basis decomposition, commutation
analysis, a small statevector simulator (for verification) and OpenQASM 2.0
serialisation.
"""

from .gates import Gate, GateSpec, gate_spec, standard_gate_names
from .circuit import Circuit
from .dag import CircuitDAG
from .decompose import decompose_to_cx, decompose_gate, mct_v_chain
from .commutation import (
    clear_commutation_cache,
    commutation_cache_stats,
    commutes,
    commutes_with_all,
    commutes_through,
    set_commutation_cache_enabled,
)
from .qasm import to_qasm, from_qasm
from .transpile import (
    cancel_adjacent_inverses,
    merge_rotations,
    drop_identities,
    optimize_circuit,
)
from . import simulator

__all__ = [
    "Gate",
    "GateSpec",
    "gate_spec",
    "standard_gate_names",
    "Circuit",
    "CircuitDAG",
    "decompose_to_cx",
    "decompose_gate",
    "mct_v_chain",
    "commutes",
    "commutes_with_all",
    "commutes_through",
    "clear_commutation_cache",
    "commutation_cache_stats",
    "set_commutation_cache_enabled",
    "to_qasm",
    "from_qasm",
    "cancel_adjacent_inverses",
    "merge_rotations",
    "drop_identities",
    "optimize_circuit",
    "simulator",
]
