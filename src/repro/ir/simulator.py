"""Small dense statevector simulator.

The simulator exists to *verify* compiler transformations on small circuits
(decomposition correctness, commutation rewrites, communication protocol
semantics), not to run large programs.  It therefore favours clarity over
performance and supports up to roughly 14 qubits comfortably.

Conventions
-----------
Qubit 0 is the most significant bit of the computational basis index, i.e.
for two qubits the basis ordering is ``|q0 q1> = |00>, |01>, |10>, |11>``.
This matches the unitary builders in :mod:`repro.ir.gates`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .circuit import Circuit
from .gates import Gate

__all__ = [
    "simulate",
    "circuit_unitary",
    "apply_gate",
    "zero_state",
    "random_statevector",
    "reduced_density_matrix",
    "states_equal_up_to_global_phase",
    "unitaries_equal_up_to_global_phase",
    "fidelity",
    "purity",
]


def zero_state(num_qubits: int) -> np.ndarray:
    """Return the ``|0...0>`` statevector on ``num_qubits`` qubits."""
    state = np.zeros(2 ** num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def random_statevector(num_qubits: int, seed: Optional[int] = None) -> np.ndarray:
    """Return a Haar-ish random normalised statevector (Gaussian method)."""
    rng = np.random.default_rng(seed)
    vec = rng.normal(size=2 ** num_qubits) + 1j * rng.normal(size=2 ** num_qubits)
    return vec / np.linalg.norm(vec)


def _as_tensor(state: np.ndarray, num_qubits: int) -> np.ndarray:
    return np.reshape(state, (2,) * num_qubits)


def apply_gate(state: np.ndarray, gate: Gate, num_qubits: int,
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Apply a single gate to ``state`` and return the new statevector.

    Measurements collapse the state using ``rng`` (which must be provided
    when the circuit contains measurements); resets project onto ``|0>`` and
    renormalise (measure-and-flip semantics).  Barriers are no-ops.
    """
    if gate.is_barrier:
        return state
    if gate.name == "measure":
        return _collapse(state, gate.qubits[0], num_qubits, rng)[0]
    if gate.name == "reset":
        collapsed, outcome = _collapse(state, gate.qubits[0], num_qubits, rng)
        if outcome == 1:
            collapsed = apply_gate(collapsed, Gate("x", (gate.qubits[0],)), num_qubits)
        return collapsed

    matrix = gate.unitary()
    k = gate.num_qubits
    tensor = _as_tensor(state, num_qubits)
    axes = list(gate.qubits)
    # Move the gate's qubit axes to the front, apply the matrix, move back.
    tensor = np.moveaxis(tensor, axes, range(k))
    shape = tensor.shape
    tensor = np.reshape(tensor, (2 ** k, -1))
    tensor = matrix @ tensor
    tensor = np.reshape(tensor, shape)
    tensor = np.moveaxis(tensor, range(k), axes)
    return np.reshape(tensor, 2 ** num_qubits)


def _collapse(state: np.ndarray, qubit: int, num_qubits: int,
              rng: Optional[np.random.Generator]) -> Tuple[np.ndarray, int]:
    """Measure ``qubit`` in the Z basis, collapsing and renormalising."""
    if rng is None:
        raise ValueError(
            "circuit contains measurement/reset; pass a seed to simulate()")
    tensor = _as_tensor(state, num_qubits)
    tensor = np.moveaxis(tensor, qubit, 0)
    prob0 = float(np.sum(np.abs(tensor[0]) ** 2))
    outcome = 0 if rng.random() < prob0 else 1
    keep = tensor[outcome]
    norm = np.linalg.norm(keep)
    new_tensor = np.zeros_like(tensor)
    if norm > 0:
        new_tensor[outcome] = keep / norm
    new_tensor = np.moveaxis(new_tensor, 0, qubit)
    return np.reshape(new_tensor, 2 ** num_qubits), outcome


def simulate(circuit: Circuit, initial_state: Optional[np.ndarray] = None,
             seed: Optional[int] = None) -> np.ndarray:
    """Run ``circuit`` on ``initial_state`` (default ``|0...0>``).

    Returns the final statevector.  A ``seed`` is required when the circuit
    contains measurements or resets.
    """
    num_qubits = circuit.num_qubits
    if num_qubits > 20:
        raise ValueError("simulator limited to 20 qubits")
    if initial_state is None:
        state = zero_state(num_qubits)
    else:
        state = np.asarray(initial_state, dtype=complex)
        if state.shape != (2 ** num_qubits,):
            raise ValueError(
                f"initial state has wrong dimension {state.shape}, expected "
                f"{(2 ** num_qubits,)}")
        state = state.copy()
    rng = np.random.default_rng(seed) if seed is not None else None
    for gate in circuit:
        state = apply_gate(state, gate, num_qubits, rng)
    return state


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Return the full unitary of a measurement-free circuit."""
    num_qubits = circuit.num_qubits
    if num_qubits > 10:
        raise ValueError("circuit_unitary limited to 10 qubits")
    dim = 2 ** num_qubits
    unitary = np.eye(dim, dtype=complex)
    for column in range(dim):
        state = np.zeros(dim, dtype=complex)
        state[column] = 1.0
        for gate in circuit:
            if not gate.is_unitary and not gate.is_barrier:
                raise ValueError(f"non-unitary gate {gate.name!r} in circuit")
            state = apply_gate(state, gate, num_qubits)
        unitary[:, column] = state
    return unitary


def reduced_density_matrix(state: np.ndarray, keep: Sequence[int],
                           num_qubits: int) -> np.ndarray:
    """Partial trace keeping the qubits in ``keep`` (in the given order)."""
    keep = list(keep)
    drop = [q for q in range(num_qubits) if q not in keep]
    tensor = _as_tensor(state, num_qubits)
    tensor = np.transpose(tensor, keep + drop)
    tensor = np.reshape(tensor, (2 ** len(keep), 2 ** len(drop)))
    return tensor @ tensor.conj().T


def purity(rho: np.ndarray) -> float:
    """Return ``Tr(rho^2)`` as a real number."""
    return float(np.real(np.trace(rho @ rho)))


def fidelity(state: np.ndarray, rho_or_state: np.ndarray) -> float:
    """Fidelity between a pure state and either a pure state or a density matrix."""
    state = np.asarray(state, dtype=complex)
    other = np.asarray(rho_or_state, dtype=complex)
    if other.ndim == 1:
        return float(abs(np.vdot(state, other)) ** 2)
    return float(np.real(np.conj(state) @ other @ state))


def states_equal_up_to_global_phase(a: np.ndarray, b: np.ndarray,
                                    atol: float = 1e-8) -> bool:
    """True when two statevectors differ only by a global phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    overlap = np.vdot(a, b)
    return bool(abs(abs(overlap) - 1.0) < atol * max(1.0, np.linalg.norm(a) ** 2))


def unitaries_equal_up_to_global_phase(a: np.ndarray, b: np.ndarray,
                                       atol: float = 1e-8) -> bool:
    """True when two unitaries differ only by a global phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    # Find the first element of b with non-negligible magnitude and use it to
    # normalise the relative phase.
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = a[idx] / b[idx]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a, phase * b, atol=atol))
