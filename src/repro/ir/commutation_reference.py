"""Reference (pre-optimization) commutation engine.

Preserves the original behaviour *and cost profile* of
:func:`repro.ir.commutation.commutes` before the hot-path overhaul: qubit
sets are rebuilt per query, every structural property walks the gate
registry (as the original ``Gate`` properties did), and only the matrix
fallback is memoised.  The reference compiler passes in
``repro.core.aggregation_reference`` and ``repro.core.scheduling_reference``
route their commutation queries through this module so that
``benchmarks/bench_compiler_perf.py`` measures the optimized engine against
the true pre-optimization baseline.

Do not "optimize" this module: its slowness is the baseline being measured.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .commutation import (_CONTROLLED_2Q, _DIAGONAL_2Q, _X_AXIS, _Z_AXIS,
                          _matrix_commutes)
from .gates import Gate, gate_spec

__all__ = ["commutes_reference"]


# Registry-walking property replicas: the pre-optimization Gate resolved
# every structural query through gate_spec(), so the reference engine must
# pay the same lookups instead of reading the cached attributes.

def _is_unitary(gate: Gate) -> bool:
    return gate_spec(gate.name).unitary is not None


def _is_single_qubit(gate: Gate) -> bool:
    return _is_unitary(gate) and len(gate.qubits) == 1


def _is_two_qubit(gate: Gate) -> bool:
    return _is_unitary(gate) and len(gate.qubits) == 2


def _is_multi_qubit(gate: Gate) -> bool:
    return _is_unitary(gate) and len(gate.qubits) >= 2


def _is_diagonal(gate: Gate) -> bool:
    return gate_spec(gate.name).diagonal


def _axis(gate: Gate) -> Optional[str]:
    return gate_spec(gate.name).axis


def commutes_reference(gate_a: Gate, gate_b: Gate) -> bool:
    """Original (uncached rule path) implementation of ``commutes``."""
    shared = set(gate_a.qubits) & set(gate_b.qubits)
    if not shared:
        return True
    if not _is_unitary(gate_a) or not _is_unitary(gate_b):
        return False

    rule = _rule_based(gate_a, gate_b, shared)
    if rule is not None:
        return rule
    return _matrix_commutes(gate_a, gate_b)


def _rule_based(a: Gate, b: Gate, shared: set) -> Optional[bool]:
    if a.name == "id" or b.name == "id":
        return True
    if _is_diagonal(a) and _is_diagonal(b):
        return True
    if _is_single_qubit(a) and _is_single_qubit(b):
        return _single_single(a, b)
    if _is_single_qubit(a) and _is_multi_qubit(b):
        return _single_multi(a, b)
    if _is_single_qubit(b) and _is_multi_qubit(a):
        return _single_multi(b, a)
    if _is_two_qubit(a) and _is_two_qubit(b):
        return _two_two(a, b, shared)
    return None


def _single_single(a: Gate, b: Gate) -> Optional[bool]:
    axis_a, axis_b = _axis(a), _axis(b)
    if axis_a is not None and axis_a == axis_b:
        return True
    return None


def _single_multi(single: Gate, multi: Gate) -> Optional[bool]:
    q = single.qubits[0]
    if multi.name in _CONTROLLED_2Q or multi.name in ("ccx", "ccz", "cswap"):
        controls, targets = _controls_targets(multi)
        if q in controls:
            if single.name in _Z_AXIS:
                return True
            return None
        if q in targets:
            if multi.name in ("cx", "ccx") and single.name in _X_AXIS:
                return True
            if multi.name in ("cz", "crz", "cp", "ccz") and single.name in _Z_AXIS:
                return True
            return None
    if multi.name == "rzz" and single.name in _Z_AXIS:
        return True
    if multi.name == "rxx" and single.name in _X_AXIS:
        return True
    return None


def _controls_targets(gate: Gate) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    if gate.name in _CONTROLLED_2Q:
        return (gate.qubits[0],), (gate.qubits[1],)
    if gate.name in ("ccx", "ccz"):
        return gate.qubits[:2], gate.qubits[2:]
    if gate.name == "cswap":
        return gate.qubits[:1], gate.qubits[1:]
    return (), gate.qubits


def _two_two(a: Gate, b: Gate, shared: set) -> Optional[bool]:
    if a.name in _DIAGONAL_2Q and b.name in _DIAGONAL_2Q:
        return True
    if a.name == "cx" and b.name == "cx":
        if a.qubits == b.qubits:
            return True
        if a.qubits[0] == b.qubits[0] and a.qubits[1] != b.qubits[1]:
            return True
        if a.qubits[1] == b.qubits[1] and a.qubits[0] != b.qubits[0]:
            return True
        return False
    if {a.name, b.name} <= (_CONTROLLED_2Q | {"rzz"}):
        diag, other = (a, b) if a.name in _DIAGONAL_2Q else (b, a)
        if diag.name in _DIAGONAL_2Q and other.name in _CONTROLLED_2Q:
            controls, _ = _controls_targets(other)
            if shared <= set(controls):
                return True
            if other.name in _DIAGONAL_2Q:
                return True
            return None
    return None
