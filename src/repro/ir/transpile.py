"""Local circuit optimisation passes.

The AutoComm paper assumes its input has already been through a standard
single-node compilation flow ("gate unrolling" and friends in Figure 1).
This module provides the local clean-up passes such a flow performs, so the
benchmark circuits fed to the communication passes are not artificially
inflated:

* :func:`cancel_adjacent_inverses` — remove gate pairs ``G G†`` that are
  adjacent on their qubits (CX-CX, H-H, S-Sdg, ...).
* :func:`merge_rotations` — merge adjacent rotations about the same axis on
  the same qubit (``RZ(a) RZ(b) -> RZ(a+b)``) and drop the result when the
  combined angle is a multiple of 2π.
* :func:`drop_identities` — remove explicit identity gates and zero-angle
  rotations.
* :func:`optimize_circuit` — run the passes to a fixed point.

All passes preserve the circuit unitary exactly (up to global phase for the
zero-rotation removal), which the test-suite checks by simulation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .circuit import Circuit
from .gates import Gate

__all__ = [
    "cancel_adjacent_inverses",
    "merge_rotations",
    "drop_identities",
    "optimize_circuit",
]

_TWO_PI = 2.0 * math.pi

#: Rotation gates that can be merged when adjacent on the same qubit(s).
_MERGEABLE = frozenset({"rx", "ry", "rz", "p", "rzz", "rxx", "crz", "crx", "cry", "cp"})


def _is_inverse_pair(a: Gate, b: Gate) -> bool:
    """True when ``b`` undoes ``a`` exactly (same qubits, inverse operation)."""
    if a.qubits != b.qubits:
        return False
    if not (a.is_unitary and b.is_unitary):
        return False
    spec = a.spec
    if spec.self_inverse and a.name == b.name and a.params == b.params == ():
        return True
    if spec.inverse_name is not None and b.name == spec.inverse_name:
        return True
    if (a.name == b.name and spec.num_params == 1
            and abs(a.params[0] + b.params[0]) < 1e-12):
        return True
    return False


def cancel_adjacent_inverses(circuit: Circuit) -> Circuit:
    """Remove gate pairs that are mutual inverses and adjacent on their qubits.

    Adjacency is per-qubit: two gates cancel only if no other gate touching
    any of their qubits sits between them.
    """
    gates = list(circuit.gates)
    removed = [False] * len(gates)
    last_on_qubit: Dict[int, int] = {}
    for index, gate in enumerate(gates):
        if gate.is_barrier:
            for q in range(circuit.num_qubits):
                last_on_qubit[q] = index
            continue
        candidates = {last_on_qubit.get(q) for q in gate.qubits}
        previous = candidates.pop() if len(candidates) == 1 else None
        if (previous is not None and not removed[previous]
                and not gates[previous].is_barrier
                and _is_inverse_pair(gates[previous], gate)):
            removed[previous] = True
            removed[index] = True
            # Roll the per-qubit pointer back past the cancelled pair.
            for q in gate.qubits:
                last_on_qubit.pop(q, None)
            continue
        for q in gate.qubits:
            last_on_qubit[q] = index
    out = Circuit(circuit.num_qubits, name=circuit.name)
    out.extend(g for g, dead in zip(gates, removed) if not dead)
    return out


def merge_rotations(circuit: Circuit) -> Circuit:
    """Merge adjacent same-axis rotations on identical qubit tuples."""
    out_gates: List[Gate] = []
    last_on_qubit: Dict[int, int] = {}
    for gate in circuit:
        if gate.is_barrier:
            for q in range(circuit.num_qubits):
                last_on_qubit[q] = -1
            out_gates.append(gate)
            continue
        merge_index: Optional[int] = None
        if gate.name in _MERGEABLE:
            candidates = {last_on_qubit.get(q) for q in gate.qubits}
            if len(candidates) == 1:
                candidate = candidates.pop()
                if (candidate is not None and candidate >= 0
                        and out_gates[candidate].name == gate.name
                        and out_gates[candidate].qubits == gate.qubits):
                    merge_index = candidate
        if merge_index is not None:
            angle = out_gates[merge_index].params[0] + gate.params[0]
            out_gates[merge_index] = Gate(gate.name, gate.qubits, (angle,))
        else:
            out_gates.append(gate)
            for q in gate.qubits:
                last_on_qubit[q] = len(out_gates) - 1
    out = Circuit(circuit.num_qubits, name=circuit.name)
    out.extend(out_gates)
    return out


def drop_identities(circuit: Circuit, atol: float = 1e-12) -> Circuit:
    """Remove identity gates and (multiples-of-2π) zero rotations."""
    out = Circuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        if gate.name == "id":
            continue
        if gate.name in _MERGEABLE and len(gate.params) == 1:
            angle = math.remainder(gate.params[0], _TWO_PI)
            if abs(angle) < atol:
                continue
        out.append(gate)
    return out


def optimize_circuit(circuit: Circuit, max_iterations: int = 10) -> Circuit:
    """Run the local passes to a fixed point (bounded by ``max_iterations``)."""
    current = circuit
    for _ in range(max_iterations):
        optimized = drop_identities(merge_rotations(cancel_adjacent_inverses(current)))
        if len(optimized) == len(current):
            return optimized
        current = optimized
    return current
