"""Gate definitions for the quantum circuit IR.

The IR works with a fixed, explicit gate library.  Each gate is an immutable
:class:`Gate` instance referencing a :class:`GateSpec` in the registry.  The
registry records, for every gate name, the number of qubits, the number of
parameters, a unitary builder and a handful of structural properties
(diagonality, self-inverseness, the rotation axis for single-qubit rotations)
that the commutation engine and the decomposition pass rely on.

All qubits are referenced by global integer indices; the mapping of qubit
indices to quantum nodes lives in :mod:`repro.partition`, not here.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "Gate",
    "GateSpec",
    "GATE_REGISTRY",
    "gate_spec",
    "gate_unitary",
    "is_supported_gate",
    "SINGLE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "DIAGONAL_GATES",
    "standard_gate_names",
]


# ---------------------------------------------------------------------------
# Unitary builders
# ---------------------------------------------------------------------------

def _u_i() -> np.ndarray:
    return np.eye(2, dtype=complex)


def _u_x() -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=complex)


def _u_y() -> np.ndarray:
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def _u_z() -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=complex)


def _u_h() -> np.ndarray:
    return np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)


def _u_s() -> np.ndarray:
    return np.array([[1, 0], [0, 1j]], dtype=complex)


def _u_sdg() -> np.ndarray:
    return np.array([[1, 0], [0, -1j]], dtype=complex)


def _u_t() -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)


def _u_tdg() -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)


def _u_sx() -> np.ndarray:
    return 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)


def _u_rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _u_ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _u_rz(theta: float) -> np.ndarray:
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]],
        dtype=complex,
    )


def _u_p(theta: float) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * theta)]], dtype=complex)


def _u_u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def _controlled(u: np.ndarray) -> np.ndarray:
    """Return the controlled version of a single-qubit unitary.

    Qubit ordering convention: qubit 0 (the control) is the *most
    significant* bit of the basis index, matching
    :mod:`repro.ir.simulator`.
    """
    dim = u.shape[0]
    out = np.eye(2 * dim, dtype=complex)
    out[dim:, dim:] = u
    return out


def _u_cx() -> np.ndarray:
    return _controlled(_u_x())


def _u_cz() -> np.ndarray:
    return _controlled(_u_z())


def _u_cy() -> np.ndarray:
    return _controlled(_u_y())


def _u_ch() -> np.ndarray:
    return _controlled(_u_h())


def _u_crz(theta: float) -> np.ndarray:
    return _controlled(_u_rz(theta))


def _u_crx(theta: float) -> np.ndarray:
    return _controlled(_u_rx(theta))


def _u_cry(theta: float) -> np.ndarray:
    return _controlled(_u_ry(theta))


def _u_cp(theta: float) -> np.ndarray:
    return _controlled(_u_p(theta))


def _u_swap() -> np.ndarray:
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    )


def _u_rzz(theta: float) -> np.ndarray:
    a = cmath.exp(-1j * theta / 2)
    b = cmath.exp(1j * theta / 2)
    return np.diag([a, b, b, a]).astype(complex)

def _u_rxx(theta: float) -> np.ndarray:
    c = math.cos(theta / 2)
    s = -1j * math.sin(theta / 2)
    return np.array(
        [[c, 0, 0, s], [0, c, s, 0], [0, s, c, 0], [s, 0, 0, c]], dtype=complex
    )


def _u_ccx() -> np.ndarray:
    out = np.eye(8, dtype=complex)
    out[6, 6] = out[7, 7] = 0
    out[6, 7] = out[7, 6] = 1
    return out


def _u_ccz() -> np.ndarray:
    out = np.eye(8, dtype=complex)
    out[7, 7] = -1
    return out


def _u_cswap() -> np.ndarray:
    out = np.eye(8, dtype=complex)
    # swap qubits 1 and 2 when qubit 0 (most significant) is 1
    out[5, 5] = out[6, 6] = 0
    out[5, 6] = out[6, 5] = 1
    return out


# ---------------------------------------------------------------------------
# Gate specification registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: canonical lower-case gate name.
        num_qubits: number of qubits the gate acts on (0 qubit count means
            "variable", used only for ``barrier``).
        num_params: number of real parameters.
        unitary: callable building the gate unitary from its parameters, or
            ``None`` for non-unitary operations (measure, reset, barrier).
        diagonal: True when the unitary is diagonal in the computational
            basis (commutes with Z and with CX controls).
        self_inverse: True when the gate is its own inverse (parameter-free
            gates only).
        axis: rotation axis ("x", "y" or "z") for single-qubit gates that are
            rotations about a fixed axis up to global phase; ``None``
            otherwise.
        inverse_name: name of the inverse gate when it is a different
            registry entry (e.g. ``s``/``sdg``); parameterised gates invert
            by negating parameters.
    """

    name: str
    num_qubits: int
    num_params: int
    unitary: Optional[Callable[..., np.ndarray]]
    diagonal: bool = False
    self_inverse: bool = False
    axis: Optional[str] = None
    inverse_name: Optional[str] = None


def _spec(*args, **kwargs) -> GateSpec:
    return GateSpec(*args, **kwargs)


GATE_REGISTRY: Dict[str, GateSpec] = {
    # single-qubit, parameter-free
    "id": _spec("id", 1, 0, _u_i, diagonal=True, self_inverse=True),
    "x": _spec("x", 1, 0, _u_x, self_inverse=True, axis="x"),
    "y": _spec("y", 1, 0, _u_y, self_inverse=True, axis="y"),
    "z": _spec("z", 1, 0, _u_z, diagonal=True, self_inverse=True, axis="z"),
    "h": _spec("h", 1, 0, _u_h, self_inverse=True),
    "s": _spec("s", 1, 0, _u_s, diagonal=True, axis="z", inverse_name="sdg"),
    "sdg": _spec("sdg", 1, 0, _u_sdg, diagonal=True, axis="z", inverse_name="s"),
    "t": _spec("t", 1, 0, _u_t, diagonal=True, axis="z", inverse_name="tdg"),
    "tdg": _spec("tdg", 1, 0, _u_tdg, diagonal=True, axis="z", inverse_name="t"),
    "sx": _spec("sx", 1, 0, _u_sx, axis="x", inverse_name="sxdg"),
    "sxdg": _spec("sxdg", 1, 0, lambda: _u_sx().conj().T, axis="x", inverse_name="sx"),
    # single-qubit, parameterised
    "rx": _spec("rx", 1, 1, _u_rx, axis="x"),
    "ry": _spec("ry", 1, 1, _u_ry, axis="y"),
    "rz": _spec("rz", 1, 1, _u_rz, diagonal=True, axis="z"),
    "p": _spec("p", 1, 1, _u_p, diagonal=True, axis="z"),
    "u3": _spec("u3", 1, 3, _u_u3),
    # two-qubit
    "cx": _spec("cx", 2, 0, _u_cx, self_inverse=True),
    "cz": _spec("cz", 2, 0, _u_cz, diagonal=True, self_inverse=True),
    "cy": _spec("cy", 2, 0, _u_cy, self_inverse=True),
    "ch": _spec("ch", 2, 0, _u_ch, self_inverse=True),
    "crz": _spec("crz", 2, 1, _u_crz, diagonal=True),
    "crx": _spec("crx", 2, 1, _u_crx),
    "cry": _spec("cry", 2, 1, _u_cry),
    "cp": _spec("cp", 2, 1, _u_cp, diagonal=True),
    "swap": _spec("swap", 2, 0, _u_swap, self_inverse=True),
    "rzz": _spec("rzz", 2, 1, _u_rzz, diagonal=True),
    "rxx": _spec("rxx", 2, 1, _u_rxx),
    # three-qubit
    "ccx": _spec("ccx", 3, 0, _u_ccx, self_inverse=True),
    "ccz": _spec("ccz", 3, 0, _u_ccz, diagonal=True, self_inverse=True),
    "cswap": _spec("cswap", 3, 0, _u_cswap, self_inverse=True),
    # non-unitary / structural
    "measure": _spec("measure", 1, 0, None),
    "reset": _spec("reset", 1, 0, None),
    "barrier": _spec("barrier", 0, 0, None),
}

SINGLE_QUBIT_GATES = frozenset(
    name for name, spec in GATE_REGISTRY.items() if spec.num_qubits == 1 and spec.unitary
)
TWO_QUBIT_GATES = frozenset(
    name for name, spec in GATE_REGISTRY.items() if spec.num_qubits == 2
)
DIAGONAL_GATES = frozenset(
    name for name, spec in GATE_REGISTRY.items() if spec.diagonal
)


def standard_gate_names() -> Tuple[str, ...]:
    """Return the names of all registered gates in a stable order."""
    return tuple(sorted(GATE_REGISTRY))


def is_supported_gate(name: str) -> bool:
    """Return True if ``name`` refers to a registered gate."""
    return name in GATE_REGISTRY


def gate_spec(name: str) -> GateSpec:
    """Look up the :class:`GateSpec` for ``name``.

    Raises:
        KeyError: if the gate is not registered.
    """
    try:
        return GATE_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown gate {name!r}; registered gates: "
                       f"{', '.join(standard_gate_names())}") from None


# ---------------------------------------------------------------------------
# Gate instances
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Gate:
    """A gate applied to specific qubits.

    ``qubits`` holds global qubit indices; the first index is the control for
    controlled gates (and the first two for doubly-controlled gates).
    ``params`` holds the real gate parameters (angles).
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        spec = gate_spec(self.name)
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if spec.name != "barrier" and len(self.qubits) != spec.num_qubits:
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name!r} applied to duplicate qubits {self.qubits}")
        if len(self.params) != spec.num_params:
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_params} params, "
                f"got {len(self.params)}"
            )
        if any(q < 0 for q in self.qubits):
            raise ValueError(f"negative qubit index in {self.qubits}")
        # The compiler's hot paths (commutation checks, aggregation scans)
        # query these structural facts millions of times per compile; each is
        # immutable once the gate is validated, so compute them once here
        # instead of chasing the registry on every property access.  Only
        # plain picklable values are cached.
        unitary = spec.unitary is not None
        n = len(self.qubits)
        object.__setattr__(self, "_qubit_set", frozenset(self.qubits))
        object.__setattr__(self, "_is_unitary", unitary)
        object.__setattr__(self, "_is_single", unitary and n == 1)
        object.__setattr__(self, "_is_two", unitary and n == 2)
        object.__setattr__(self, "_is_multi", unitary and n >= 2)
        object.__setattr__(self, "_diagonal", spec.diagonal)
        object.__setattr__(self, "_axis", spec.axis)

    @classmethod
    def from_trusted(cls, name: str, qubits: Tuple[int, ...],
                     params: Tuple[float, ...] = ()) -> "Gate":
        """Rebuild a gate from already-validated fields.

        Skips ``__post_init__``'s per-field validation (but not the cached
        structural facts) for decode paths that replay this class's own
        output, where every field was validated when the gate was first
        built — :mod:`repro.persist` decodes tens of thousands of gates
        per artifact and the validation dominates an otherwise cheap load.
        """
        spec = gate_spec(name)
        gate = object.__new__(cls)
        set_attr = object.__setattr__
        set_attr(gate, "name", name)
        set_attr(gate, "qubits", qubits)
        set_attr(gate, "params", params)
        unitary = spec.unitary is not None
        n = len(qubits)
        set_attr(gate, "_qubit_set", frozenset(qubits))
        set_attr(gate, "_is_unitary", unitary)
        set_attr(gate, "_is_single", unitary and n == 1)
        set_attr(gate, "_is_two", unitary and n == 2)
        set_attr(gate, "_is_multi", unitary and n >= 2)
        set_attr(gate, "_diagonal", spec.diagonal)
        set_attr(gate, "_axis", spec.axis)
        return gate

    # -- structural properties -------------------------------------------------

    @property
    def spec(self) -> GateSpec:
        return gate_spec(self.name)

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def qubit_set(self) -> frozenset:
        """The gate's qubits as a cached frozenset (no per-call allocation)."""
        return self._qubit_set

    @property
    def is_unitary(self) -> bool:
        return self._is_unitary

    @property
    def is_single_qubit(self) -> bool:
        return self._is_single

    @property
    def is_two_qubit(self) -> bool:
        return self._is_two

    @property
    def is_multi_qubit(self) -> bool:
        return self._is_multi

    @property
    def is_diagonal(self) -> bool:
        return self._diagonal

    @property
    def is_measurement(self) -> bool:
        return self.name == "measure"

    @property
    def is_barrier(self) -> bool:
        return self.name == "barrier"

    @property
    def control(self) -> Optional[int]:
        """The control qubit of a controlled two-qubit gate, else None."""
        if self.name in ("cx", "cz", "cy", "ch", "crz", "crx", "cry", "cp"):
            return self.qubits[0]
        return None

    @property
    def target(self) -> Optional[int]:
        """The target qubit of a controlled two-qubit gate, else None."""
        if self.control is not None:
            return self.qubits[1]
        return None

    @property
    def axis(self) -> Optional[str]:
        return self._axis

    # -- algebra ----------------------------------------------------------------

    def unitary(self) -> np.ndarray:
        """Return the gate's unitary matrix (qubit 0 = most significant)."""
        builder = self.spec.unitary
        if builder is None:
            raise ValueError(f"gate {self.name!r} has no unitary")
        return builder(*self.params)

    def inverse(self) -> "Gate":
        """Return the inverse gate (same qubits)."""
        spec = self.spec
        if spec.unitary is None:
            raise ValueError(f"gate {self.name!r} is not invertible")
        if spec.self_inverse:
            return self
        if spec.inverse_name is not None:
            return Gate(spec.inverse_name, self.qubits, self.params)
        if spec.num_params > 0 and self.name != "u3":
            return Gate(self.name, self.qubits, tuple(-p for p in self.params))
        if self.name == "u3":
            theta, phi, lam = self.params
            return Gate("u3", self.qubits, (-theta, -lam, -phi))
        raise ValueError(f"cannot invert gate {self.name!r}")

    def remap(self, qubit_map: Dict[int, int]) -> "Gate":
        """Return a copy of the gate with qubits re-indexed via ``qubit_map``."""
        return Gate(self.name, tuple(qubit_map[q] for q in self.qubits), self.params)

    def overlaps(self, other: "Gate") -> bool:
        """Return True when this gate shares at least one qubit with ``other``."""
        return not self._qubit_set.isdisjoint(other._qubit_set)

    def acts_on(self, qubit: int) -> bool:
        return qubit in self.qubits

    # -- display ----------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            params = "(" + ", ".join(f"{p:.4g}" for p in self.params) + ")"
        else:
            params = ""
        qubits = ", ".join(str(q) for q in self.qubits)
        return f"{self.name}{params} {qubits}"


def gate_unitary(gate: Gate) -> np.ndarray:
    """Convenience wrapper around :meth:`Gate.unitary`."""
    return gate.unitary()
