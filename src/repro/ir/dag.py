"""Dependency DAG over a circuit's instruction list.

Nodes are instruction indices; a directed edge ``i -> j`` means instruction
``j`` must run after ``i`` because they touch a common qubit and ``i``
appears earlier.  Only *immediate* per-qubit dependencies are materialised,
which is sufficient for ASAP scheduling and critical-path analysis.
Barriers create dependencies across every qubit they span.

Adjacency is stored as plain lists indexed by instruction position: edges
always point forward in program order, so index order *is* a topological
order and every analysis below is a single linear scan.  A ``networkx``
view of the same graph is still available through :attr:`CircuitDAG.graph`
for callers that want graph-library algorithms; it is built lazily on first
access so the hot analyses never pay for it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List

from .circuit import Circuit
from .gates import Gate

__all__ = ["CircuitDAG"]


class CircuitDAG:
    """Immediate-dependency DAG of a circuit."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._gates: List[Gate] = list(circuit)
        self._preds: List[List[int]] = []
        self._succs: List[List[int]] = []
        self._nx_graph = None
        self._build()

    def _build(self) -> None:
        last_on_qubit: Dict[int, int] = {}
        num_qubits = self.circuit.num_qubits
        preds = self._preds
        succs = self._succs
        for index, gate in enumerate(self._gates):
            qubits = gate.qubits if not gate.is_barrier else range(num_qubits)
            incoming = set()
            for q in qubits:
                if q in last_on_qubit:
                    incoming.add(last_on_qubit[q])
            preds.append(sorted(incoming))
            succs.append([])
            for p in incoming:
                succs[p].append(index)
            for q in qubits:
                last_on_qubit[q] = index

    # ------------------------------------------------------------------ views

    @property
    def graph(self):
        """The same DAG as a :class:`networkx.DiGraph` (built on demand)."""
        if self._nx_graph is None:
            import networkx as nx

            graph = nx.DiGraph()
            for index, gate in enumerate(self._gates):
                graph.add_node(index, gate=gate)
            for index, preds in enumerate(self._preds):
                for p in preds:
                    graph.add_edge(p, index)
            self._nx_graph = graph
        return self._nx_graph

    def __len__(self) -> int:
        return len(self._gates)

    def gate(self, index: int) -> Gate:
        return self._gates[index]

    def predecessors(self, index: int) -> List[int]:
        return list(self._preds[index])

    def successors(self, index: int) -> List[int]:
        return sorted(self._succs[index])

    def topological_order(self) -> List[int]:
        # Edges only point forward in program order, so the instruction
        # order itself is topological.
        return list(range(len(self._gates)))

    def front_layer(self) -> List[int]:
        """Instruction indices with no predecessors."""
        return [i for i, preds in enumerate(self._preds) if not preds]

    # -------------------------------------------------------------- scheduling

    def asap_levels(self) -> Dict[int, int]:
        """Assign each instruction the earliest integer layer it can occupy."""
        levels: Dict[int, int] = {}
        for node, preds in enumerate(self._preds):
            levels[node] = 0 if not preds else max(levels[p] for p in preds) + 1
        return levels

    def critical_path_length(
        self, duration: Callable[[Gate], float]
    ) -> float:
        """Length of the longest path weighting each node by ``duration``.

        This is the circuit latency under unlimited parallelism, which is the
        model used for local-gate latency in the paper's evaluation (remote
        communications get a resource-constrained schedule on top of this, see
        :mod:`repro.core.scheduling`).
        """
        finish: List[float] = [0.0] * len(self._gates)
        best = 0.0
        for node, preds in enumerate(self._preds):
            start = 0.0
            for pred in preds:
                if finish[pred] > start:
                    start = finish[pred]
            end = start + duration(self._gates[node])
            finish[node] = end
            if end > best:
                best = end
        return best

    def asap_start_times(
        self, duration: Callable[[Gate], float]
    ) -> Dict[int, float]:
        """ASAP start time per instruction under unlimited parallelism."""
        finish: List[float] = [0.0] * len(self._gates)
        start_times: Dict[int, float] = {}
        for node, preds in enumerate(self._preds):
            start = 0.0
            for pred in preds:
                if finish[pred] > start:
                    start = finish[pred]
            start_times[node] = start
            finish[node] = start + duration(self._gates[node])
        return start_times

    def layers(self) -> List[List[int]]:
        """Group instructions into ASAP layers (lists of instruction indices)."""
        levels = self.asap_levels()
        grouped: Dict[int, List[int]] = defaultdict(list)
        for node, level in levels.items():
            grouped[level].append(node)
        return [sorted(grouped[level]) for level in sorted(grouped)]
