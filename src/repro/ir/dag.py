"""Dependency DAG over a circuit's instruction list.

Nodes are instruction indices; a directed edge ``i -> j`` means instruction
``j`` must run after ``i`` because they touch a common qubit and ``i``
appears earlier.  Only *immediate* per-qubit dependencies are materialised,
which is sufficient for ASAP scheduling and critical-path analysis.
Barriers create dependencies across every qubit they span.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from .circuit import Circuit
from .gates import Gate

__all__ = ["CircuitDAG"]


class CircuitDAG:
    """Immediate-dependency DAG of a circuit."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.graph = nx.DiGraph()
        self._build()

    def _build(self) -> None:
        last_on_qubit: Dict[int, int] = {}
        for index, gate in enumerate(self.circuit):
            self.graph.add_node(index, gate=gate)
            qubits = gate.qubits if not gate.is_barrier else tuple(range(self.circuit.num_qubits))
            preds = set()
            for q in qubits:
                if q in last_on_qubit:
                    preds.add(last_on_qubit[q])
            for p in preds:
                self.graph.add_edge(p, index)
            for q in qubits:
                last_on_qubit[q] = index

    # ------------------------------------------------------------------ views

    def gate(self, index: int) -> Gate:
        return self.graph.nodes[index]["gate"]

    def predecessors(self, index: int) -> List[int]:
        return sorted(self.graph.predecessors(index))

    def successors(self, index: int) -> List[int]:
        return sorted(self.graph.successors(index))

    def topological_order(self) -> List[int]:
        return list(nx.topological_sort(self.graph))

    def front_layer(self) -> List[int]:
        """Instruction indices with no predecessors."""
        return sorted(n for n in self.graph.nodes if self.graph.in_degree(n) == 0)

    # -------------------------------------------------------------- scheduling

    def asap_levels(self) -> Dict[int, int]:
        """Assign each instruction the earliest integer layer it can occupy."""
        levels: Dict[int, int] = {}
        for node in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(node))
            levels[node] = 0 if not preds else max(levels[p] for p in preds) + 1
        return levels

    def critical_path_length(
        self, duration: Callable[[Gate], float]
    ) -> float:
        """Length of the longest path weighting each node by ``duration``.

        This is the circuit latency under unlimited parallelism, which is the
        model used for local-gate latency in the paper's evaluation (remote
        communications get a resource-constrained schedule on top of this, see
        :mod:`repro.core.scheduling`).
        """
        finish: Dict[int, float] = {}
        best = 0.0
        for node in nx.topological_sort(self.graph):
            gate = self.gate(node)
            start = 0.0
            for pred in self.graph.predecessors(node):
                start = max(start, finish[pred])
            finish[node] = start + duration(gate)
            best = max(best, finish[node])
        return best

    def asap_start_times(
        self, duration: Callable[[Gate], float]
    ) -> Dict[int, float]:
        """ASAP start time per instruction under unlimited parallelism."""
        finish: Dict[int, float] = {}
        start_times: Dict[int, float] = {}
        for node in nx.topological_sort(self.graph):
            gate = self.gate(node)
            start = 0.0
            for pred in self.graph.predecessors(node):
                start = max(start, finish[pred])
            start_times[node] = start
            finish[node] = start + duration(gate)
        return start_times

    def layers(self) -> List[List[int]]:
        """Group instructions into ASAP layers (lists of instruction indices)."""
        levels = self.asap_levels()
        grouped: Dict[int, List[int]] = defaultdict(list)
        for node, level in levels.items():
            grouped[level].append(node)
        return [sorted(grouped[level]) for level in sorted(grouped)]
