"""Quantum network topologies beyond the all-to-all assumption.

The paper assumes any two nodes can establish an EPR pair directly (data
centre style).  Real near-term networks may instead offer a line, ring or
grid of links; a remote EPR pair between non-adjacent nodes is then built by
entanglement swapping along the shortest path, which multiplies the
preparation latency by (roughly) the hop count.

:func:`apply_topology` configures a :class:`~repro.hardware.network.QuantumNetwork`
for a chosen topology: it derives per-pair EPR latencies from the hop
counts *and* attaches a :class:`~repro.hardware.routing.RoutingTable` so the
whole pipeline becomes topology-aware — the OEE partitioner can weight
interaction edges by hop distance, the cost pass reports physical EPR pairs
(swaps included), and the execution simulator books the intermediate links
of each route instead of an abstract end-to-end pair.  Logical
communication counts (``total_comm``) are unaffected: one remote
communication still consumes one end-to-end EPR pair.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from .network import QuantumNetwork
from .routing import RoutingTable

__all__ = [
    "topology_graph",
    "apply_topology",
    "hop_counts",
    "SUPPORTED_TOPOLOGIES",
]

SUPPORTED_TOPOLOGIES = ("all-to-all", "line", "ring", "star", "grid")


def topology_graph(kind: str, num_nodes: int,
                   grid_columns: Optional[int] = None) -> nx.Graph:
    """Build the link graph of a named topology over ``num_nodes`` nodes."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    kind = kind.lower()
    if grid_columns is not None and kind != "grid":
        raise ValueError(
            f"grid_columns only applies to the grid topology, not {kind!r}")
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    if kind == "all-to-all":
        graph.add_edges_from((i, j) for i in range(num_nodes)
                             for j in range(i + 1, num_nodes))
    elif kind == "line":
        graph.add_edges_from((i, i + 1) for i in range(num_nodes - 1))
    elif kind == "ring":
        # A ring degenerates to a single link for two nodes and to an
        # isolated node for one (the modular wrap-around would otherwise
        # emit a duplicate edge resp. a (0, 0) self-loop).
        if num_nodes >= 3:
            graph.add_edges_from((i, (i + 1) % num_nodes)
                                 for i in range(num_nodes))
        elif num_nodes == 2:
            graph.add_edge(0, 1)
    elif kind == "star":
        graph.add_edges_from((0, i) for i in range(1, num_nodes))
    elif kind == "grid":
        if grid_columns is not None and grid_columns < 1:
            raise ValueError(f"grid_columns must be >= 1, got {grid_columns}")
        columns = grid_columns or max(1, int(math.isqrt(num_nodes)))
        for node in range(num_nodes):
            row, col = divmod(node, columns)
            right = node + 1
            below = node + columns
            if col + 1 < columns and right < num_nodes:
                graph.add_edge(node, right)
            if below < num_nodes:
                graph.add_edge(node, below)
    else:
        raise ValueError(f"unknown topology {kind!r}; choose from {SUPPORTED_TOPOLOGIES}")
    return graph


def hop_counts(graph: nx.Graph) -> Dict[Tuple[int, int], int]:
    """Shortest-path hop count for every node pair of a connected link graph."""
    if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
        raise ValueError("topology graph must be connected")
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    counts: Dict[Tuple[int, int], int] = {}
    nodes = sorted(graph.nodes)
    for i in nodes:
        for j in nodes:
            if i < j:
                counts[(i, j)] = lengths[i][j]
    return counts


def apply_topology(network: QuantumNetwork, kind: str,
                   swap_overhead: float = 1.0,
                   grid_columns: Optional[int] = None) -> QuantumNetwork:
    """Configure ``network`` for a topology: latencies plus routing table.

    The EPR preparation latency between two nodes becomes
    ``t_epr * (1 + swap_overhead * (hops - 1))``: adjacent nodes keep the
    base latency, and each additional entanglement-swapping hop adds
    ``swap_overhead`` times the base latency.  The attached
    :class:`~repro.hardware.routing.RoutingTable` makes the compiler passes
    and the execution simulator route-aware (physical EPR-pair accounting,
    per-link contention, hop-weighted partitioning).

    Returns the same network object (mutated) for chaining.
    """
    if swap_overhead < 0:
        raise ValueError("swap_overhead must be non-negative")
    graph = topology_graph(kind, network.num_nodes, grid_columns=grid_columns)
    routing = RoutingTable(graph)
    base = network.latency.t_epr
    for (a, b), hops in hop_counts(graph).items():
        latency = base * (1.0 + swap_overhead * (hops - 1))
        network.set_epr_latency(a, b, latency)
    network.routing = routing
    network.topology_kind = kind.lower()
    network.swap_overhead = swap_overhead
    return network
