"""Quantum network topologies beyond the all-to-all assumption.

The paper assumes any two nodes can establish an EPR pair directly (data
centre style).  Real near-term networks may instead offer a line, ring or
grid of links; a remote EPR pair between non-adjacent nodes is then built by
entanglement swapping along the shortest path, which multiplies the
preparation latency by (roughly) the hop count.

:func:`apply_topology` configures a :class:`~repro.hardware.network.QuantumNetwork`
for a chosen topology: it attaches a per-link
:class:`~repro.hardware.links.LinkModel`, builds a latency-weighted
:class:`~repro.hardware.routing.RoutingTable` over it and derives each
per-pair EPR latency from the links of the chosen route, so the whole
pipeline becomes topology- and link-aware — the OEE partitioner weights
interaction edges by routed link-latency sums, the cost pass reports
physical EPR pairs (swaps included), and the execution simulator books the
intermediate links of each route (against each link's own capacity) instead
of an abstract end-to-end pair.  Logical communication counts
(``total_comm``) are unaffected: one remote communication still consumes
one end-to-end EPR pair.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import networkx as nx

from .links import LinkModel, link_model_from_profile
from .network import QuantumNetwork
from .routing import RoutingTable

__all__ = [
    "topology_graph",
    "apply_topology",
    "hop_counts",
    "SUPPORTED_TOPOLOGIES",
]

SUPPORTED_TOPOLOGIES = ("all-to-all", "line", "ring", "star", "grid")


def topology_graph(kind: str, num_nodes: int,
                   grid_columns: Optional[int] = None) -> nx.Graph:
    """Build the link graph of a named topology over ``num_nodes`` nodes."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    kind = kind.lower()
    if grid_columns is not None and kind != "grid":
        raise ValueError(
            f"grid_columns only applies to the grid topology, not {kind!r}")
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    if kind == "all-to-all":
        graph.add_edges_from((i, j) for i in range(num_nodes)
                             for j in range(i + 1, num_nodes))
    elif kind == "line":
        graph.add_edges_from((i, i + 1) for i in range(num_nodes - 1))
    elif kind == "ring":
        # A ring degenerates to a single link for two nodes and to an
        # isolated node for one (the modular wrap-around would otherwise
        # emit a duplicate edge resp. a (0, 0) self-loop).
        if num_nodes >= 3:
            graph.add_edges_from((i, (i + 1) % num_nodes)
                                 for i in range(num_nodes))
        elif num_nodes == 2:
            graph.add_edge(0, 1)
    elif kind == "star":
        graph.add_edges_from((0, i) for i in range(1, num_nodes))
    elif kind == "grid":
        if grid_columns is not None and grid_columns < 1:
            raise ValueError(f"grid_columns must be >= 1, got {grid_columns}")
        columns = grid_columns or max(1, int(math.isqrt(num_nodes)))
        for node in range(num_nodes):
            row, col = divmod(node, columns)
            right = node + 1
            below = node + columns
            if col + 1 < columns and right < num_nodes:
                graph.add_edge(node, right)
            if below < num_nodes:
                graph.add_edge(node, below)
    else:
        raise ValueError(f"unknown topology {kind!r}; choose from {SUPPORTED_TOPOLOGIES}")
    return graph


def hop_counts(graph: nx.Graph) -> Dict[Tuple[int, int], int]:
    """Shortest-path hop count for every node pair of a connected link graph."""
    if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
        raise ValueError("topology graph must be connected")
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    counts: Dict[Tuple[int, int], int] = {}
    nodes = sorted(graph.nodes)
    for i in nodes:
        for j in nodes:
            if i < j:
                counts[(i, j)] = lengths[i][j]
    return counts


def apply_topology(network: QuantumNetwork, kind: str,
                   swap_overhead: float = 1.0,
                   grid_columns: Optional[int] = None,
                   link_model: Optional[LinkModel] = None,
                   link_profile: Optional[str] = None) -> QuantumNetwork:
    """Configure ``network`` for a topology: link model, routing, latencies.

    Every physical link carries the parameters of the network's
    :class:`~repro.hardware.links.LinkModel` (``link_model``, or the named
    ``link_profile`` preset, or a uniform model at the latency model's
    ``t_epr``).  The :class:`~repro.hardware.routing.RoutingTable` picks
    latency-weighted shortest paths over those links (minimum total link
    latency — latency-optimal at the default ``swap_overhead`` of 1.0, a
    documented approximation otherwise; see
    :meth:`~repro.hardware.links.LinkModel.routing_weights`), and each node
    pair's EPR preparation latency becomes the route's link-latency
    combination
    (:func:`repro.hardware.links.combine_link_latencies`): the slowest link
    of the route at full cost plus ``swap_overhead`` times every other
    link's latency.  With uniform links this reduces to the legacy
    ``t_epr * (1 + swap_overhead * (hops - 1))`` — bit-identically, so a
    topology without heterogeneity compiles and simulates exactly as before
    the link model existed.

    The attached routing table and link model make the compiler passes and
    the execution simulator link-aware: physical EPR-pair accounting,
    per-link capacity contention and per-link stochastic generation,
    latency-weighted partitioning.

    Returns the same network object (mutated) for chaining.
    """
    if swap_overhead < 0:
        raise ValueError("swap_overhead must be non-negative")
    if link_model is not None and link_profile is not None:
        raise ValueError("pass link_model or link_profile, not both")
    graph = topology_graph(kind, network.num_nodes, grid_columns=grid_columns)
    base = network.latency.t_epr
    if link_profile is not None:
        link_model = link_model_from_profile(link_profile, graph, base)
    if link_model is None:
        link_model = LinkModel.uniform_model(base)
    link_model.validate_for_graph(graph)
    # routing_weights normalises each link's orientation itself.
    routing = RoutingTable(graph,
                           weights=link_model.routing_weights(graph.edges))
    for route in routing.all_routes():
        latency = link_model.route_latency(route.links, swap_overhead)
        network.set_epr_latency(route.source, route.target, latency)
    network.routing = routing
    network.link_model = link_model
    network.topology_kind = kind.lower()
    network.swap_overhead = swap_overhead
    return network
