"""Distributed quantum system model.

A :class:`QuantumNetwork` is a collection of :class:`~repro.hardware.node.QuantumNode`
objects with pairwise EPR connectivity.  Following the paper (Section 3), we
assume quantum communication can be established between any two nodes
(all-to-all, data-centre style connectivity); link metadata is still kept per
pair so non-uniform EPR latencies can be modelled.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .links import LinkModel
from .node import QuantumNode
from .routing import EPRRoute, RoutingTable
from .timing import DEFAULT_LATENCY, LatencyModel

__all__ = ["QuantumNetwork", "uniform_network"]


class QuantumNetwork:
    """A set of quantum nodes with all-to-all EPR links."""

    def __init__(self, nodes: Iterable[QuantumNode],
                 latency: LatencyModel = DEFAULT_LATENCY) -> None:
        self.nodes: List[QuantumNode] = list(nodes)
        if not self.nodes:
            raise ValueError("a network needs at least one node")
        indices = [node.index for node in self.nodes]
        if indices != list(range(len(self.nodes))):
            raise ValueError("node indices must be 0..k-1 in order")
        self.latency = latency
        self._epr_latency_overrides: Dict[Tuple[int, int], float] = {}
        #: Entanglement-routing table for constrained topologies; ``None``
        #: means direct all-to-all links (the paper's assumption).  Set by
        #: :func:`repro.hardware.topology.apply_topology`.
        self.routing: Optional[RoutingTable] = None
        #: Name of the applied topology ("all-to-all" when unconstrained).
        self.topology_kind: str = "all-to-all"
        #: Swap-overhead factor the topology's latencies were derived with.
        self.swap_overhead: float = 1.0
        #: Per-link EPR parameters (latency/capacity/p_epr); ``None`` means
        #: the legacy uniform assumption (one global ``t_epr``, unbounded
        #: links).  Set by :func:`repro.hardware.topology.apply_topology`.
        self.link_model: Optional[LinkModel] = None

    # ---------------------------------------------------------------- basics

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_data_qubits(self) -> int:
        return sum(node.num_data_qubits for node in self.nodes)

    def __iter__(self) -> Iterator[QuantumNode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return self.num_nodes

    def node(self, index: int) -> QuantumNode:
        return self.nodes[index]

    def comm_capacity(self, node_index: int) -> int:
        """Number of simultaneous remote communications a node can sustain."""
        return self.nodes[node_index].num_comm_qubits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QuantumNetwork(nodes={self.num_nodes}, "
                f"data_qubits={self.total_data_qubits})")

    # ------------------------------------------------------------------ links

    def set_epr_latency(self, node_a: int, node_b: int, latency: float) -> None:
        """Override the EPR-preparation latency for one node pair.

        Note that :func:`repro.hardware.topology.apply_topology` derives and
        stores a latency for *every* node pair, so a later ``apply_topology``
        call replaces any manual override set here.  Set overrides after the
        topology is applied — or, better, express per-link heterogeneity
        through the topology's :class:`~repro.hardware.links.LinkModel`,
        which survives re-derivation and also drives routing, capacity and
        stochastic sampling.
        """
        if node_a == node_b:
            raise ValueError("EPR links connect distinct nodes")
        latency = float(latency)
        if not latency > 0:
            raise ValueError(
                f"EPR latency must be positive, got {latency}")
        self._epr_latency_overrides[self._key(node_a, node_b)] = latency

    def epr_latency(self, node_a: int, node_b: int) -> float:
        """EPR-pair preparation latency between two nodes."""
        if node_a == node_b:
            raise ValueError("EPR links connect distinct nodes")
        return self._epr_latency_overrides.get(
            self._key(node_a, node_b), self.latency.t_epr)

    @staticmethod
    def _key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    # ---------------------------------------------------------------- routing

    def epr_route(self, node_a: int, node_b: int) -> EPRRoute:
        """The entanglement route between two nodes (direct when unrouted)."""
        if self.routing is not None:
            return self.routing.route(node_a, node_b)
        if node_a == node_b:
            raise ValueError("EPR routes connect distinct nodes")
        return EPRRoute(path=(node_a, node_b))

    def epr_hops(self, node_a: int, node_b: int) -> int:
        """Physical EPR pairs (swaps included) behind one end-to-end pair."""
        if self.routing is None:
            if node_a == node_b:
                raise ValueError("EPR routes connect distinct nodes")
            return 1
        return self.routing.hops(node_a, node_b)

    def route_links(self, node_a: int, node_b: int) -> Tuple[Tuple[int, int], ...]:
        """Physical links engaged while the end-to-end pair is generated."""
        if self.routing is None:
            if node_a == node_b:
                raise ValueError("EPR routes connect distinct nodes")
            return (self._key(node_a, node_b),)
        return self.routing.links(node_a, node_b)

    def node_pairs(self) -> List[Tuple[int, int]]:
        """All unordered node pairs."""
        return [(i, j) for i in range(self.num_nodes)
                for j in range(i + 1, self.num_nodes)]

    # ------------------------------------------------------------------ links

    @property
    def heterogeneous_links(self) -> bool:
        """True when the attached link model prices some link differently.

        Heterogeneous latencies or per-link success probabilities engage the
        per-link code paths (latency-weighted routing happens at
        ``apply_topology`` time; per-link EPR sampling in the simulator).  A
        capacity-only model stays on the pair-level sampling path — capacity
        affects booking, not generation time.
        """
        return (self.link_model is not None
                and not (self.link_model.uniform_latency
                         and self.link_model.deterministic))

    def link_latency(self, node_a: int, node_b: int) -> float:
        """EPR generation latency of one *physical link* (not a routed pair)."""
        if self.link_model is not None:
            return self.link_model.t_epr(node_a, node_b)
        if node_a == node_b:
            raise ValueError("EPR links connect distinct nodes")
        return self.latency.t_epr

    def link_capacity(self, node_a: int, node_b: int) -> Optional[int]:
        """Concurrent EPR generations the link sustains (None = unlimited)."""
        if self.link_model is not None:
            return self.link_model.capacity(node_a, node_b)
        if node_a == node_b:
            raise ValueError("EPR links connect distinct nodes")
        return None

    def link_p_epr(self, node_a: int, node_b: int) -> float:
        """Per-attempt success probability of the link (1.0 = ideal)."""
        if self.link_model is not None:
            return self.link_model.p_epr(node_a, node_b)
        if node_a == node_b:
            raise ValueError("EPR links connect distinct nodes")
        return 1.0

    # --------------------------------------------------------------- capacity

    def validate_capacity(self, num_program_qubits: int) -> None:
        """Raise if the program's qubits cannot fit in the network."""
        if num_program_qubits > self.total_data_qubits:
            raise ValueError(
                f"program needs {num_program_qubits} data qubits but the "
                f"network only provides {self.total_data_qubits}")


def uniform_network(num_nodes: int, qubits_per_node: int,
                    comm_qubits_per_node: int = 2,
                    latency: LatencyModel = DEFAULT_LATENCY) -> QuantumNetwork:
    """Build a homogeneous all-to-all network (the paper's hardware setting)."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    nodes = [
        QuantumNode(index=i, num_data_qubits=qubits_per_node,
                    num_comm_qubits=comm_qubits_per_node)
        for i in range(num_nodes)
    ]
    return QuantumNetwork(nodes, latency=latency)
