"""First-class heterogeneous link model.

Until this module existed, every layer of the pipeline assumed identical
EPR links: routing counted unit-cost hops, :func:`~repro.hardware.topology.apply_topology`
derived every per-pair latency from one global ``t_epr``, and the execution
simulator took one global ``--link-capacity``.  Real networks mix fibre
lengths and repeater quality, so each physical link carries its own
parameters here:

* ``t_epr`` — generation latency of one EPR pair on the link (one
  successful heralded attempt), in CX-gate units;
* ``capacity`` — concurrent EPR generations the link sustains (``None`` =
  unlimited, the analytical model's assumption);
* ``p_epr`` — per-attempt heralding success probability of the link
  (multiplies the simulation-level ``p_epr`` knob).

A :class:`LinkModel` maps physical links to :class:`LinkSpec` values with a
default for unlisted links.  :func:`~repro.hardware.topology.apply_topology`
attaches one to the network, feeds its latencies to the latency-weighted
:class:`~repro.hardware.routing.RoutingTable` and derives each node pair's
end-to-end EPR latency from the links of the chosen route
(:func:`combine_link_latencies`).  The *uniform* model (every link equal to
the default, no capacity, ``p_epr = 1``) reproduces the previous global
``t_epr`` behaviour bit-for-bit — the equivalence tests in
``tests/integration/test_link_model_equivalence.py`` assert it.

Models come from three places:

* :meth:`LinkModel.uniform_model` — one spec for every link (also how the
  deprecated global ``--link-capacity`` flag is mapped onto the model);
* :func:`link_model_from_profile` — named presets (``distance_scaled``,
  ``noisy_spine``) parameterised over a topology graph;
* :meth:`LinkModel.from_spec` / :func:`load_link_spec` — a user-supplied
  JSON link-spec file (the CLI's ``--link-spec``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import networkx as nx

__all__ = [
    "LinkSpec",
    "LinkModel",
    "combine_link_latencies",
    "link_model_from_profile",
    "load_link_spec",
    "LINK_PROFILES",
]

Link = Tuple[int, int]


def _normalise(a: int, b: int) -> Link:
    if a == b:
        raise ValueError("links connect distinct nodes")
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class LinkSpec:
    """Parameters of one physical EPR link."""

    t_epr: float
    capacity: Optional[int] = None
    p_epr: float = 1.0

    def __post_init__(self) -> None:
        # Inverted comparisons so NaN (which json.loads accepts) is rejected
        # here instead of corrupting routing arithmetic downstream.
        if not self.t_epr > 0:
            raise ValueError(f"link t_epr must be positive, got {self.t_epr}")
        if self.capacity is not None and not self.capacity >= 1:
            raise ValueError(
                f"link capacity must be >= 1 (or None), got {self.capacity}")
        if not 0.0 < self.p_epr <= 1.0:
            raise ValueError(
                f"link p_epr must be in (0, 1], got {self.p_epr}")

    def merged(self, **overrides: object) -> "LinkSpec":
        """A copy with selected fields replaced (used by spec parsing)."""
        data = {"t_epr": self.t_epr, "capacity": self.capacity,
                "p_epr": self.p_epr}
        data.update(overrides)
        return LinkSpec(**data)  # type: ignore[arg-type]

    def as_dict(self) -> Dict[str, object]:
        return {"t_epr": self.t_epr, "capacity": self.capacity,
                "p_epr": self.p_epr}


class LinkModel:
    """Per-link EPR parameters: a default spec plus per-link overrides.

    A default-only model (no overrides) applies to *any* link, which is how
    a uniform capacity or latency is expressed without enumerating the
    topology's edges.
    """

    def __init__(self, default: LinkSpec,
                 overrides: Optional[Mapping[Link, LinkSpec]] = None) -> None:
        self.default = default
        self._overrides: Dict[Link, LinkSpec] = {}
        for (a, b), spec in (overrides or {}).items():
            key = _normalise(a, b)
            if key in self._overrides:
                raise ValueError(f"duplicate link spec for {key}")
            self._overrides[key] = spec

    # ---------------------------------------------------------- constructors

    @classmethod
    def uniform_model(cls, t_epr: float, capacity: Optional[int] = None,
                      p_epr: float = 1.0) -> "LinkModel":
        """One spec for every link of the network."""
        return cls(LinkSpec(t_epr=t_epr, capacity=capacity, p_epr=p_epr))

    @classmethod
    def from_spec(cls, data: Mapping[str, object],
                  base_t_epr: float) -> "LinkModel":
        """Build a model from a parsed link-spec mapping.

        Schema::

            {
              "default": {"t_epr": 12.0, "capacity": 2, "p_epr": 1.0},
              "links": {
                "0-1": {"t_epr": 24.0},
                "1-2": {"p_epr": 0.5, "capacity": 1}
              }
            }

        Both sections are optional; unlisted fields of a link inherit the
        default spec, and a missing default inherits the network latency
        model's ``t_epr`` (``base_t_epr``).
        """
        known = {"default", "links"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown link-spec keys {sorted(unknown)}; expected "
                f"{sorted(known)}")
        default = LinkSpec(t_epr=base_t_epr)
        raw_default = data.get("default")
        if raw_default is not None:
            default = default.merged(**_spec_fields(raw_default, "default"))
        overrides: Dict[Link, LinkSpec] = {}
        for name, raw in (data.get("links") or {}).items():
            link = _parse_link_name(name)
            if link in overrides:
                raise ValueError(f"duplicate link spec for {link}")
            overrides[link] = default.merged(**_spec_fields(raw, name))
        return cls(default, overrides)

    # --------------------------------------------------------------- queries

    def spec(self, node_a: int, node_b: int) -> LinkSpec:
        """The spec of link ``(node_a, node_b)``."""
        return self._overrides.get(_normalise(node_a, node_b), self.default)

    def t_epr(self, node_a: int, node_b: int) -> float:
        return self.spec(node_a, node_b).t_epr

    def capacity(self, node_a: int, node_b: int) -> Optional[int]:
        return self.spec(node_a, node_b).capacity

    def p_epr(self, node_a: int, node_b: int) -> float:
        return self.spec(node_a, node_b).p_epr

    @property
    def overrides(self) -> Dict[Link, LinkSpec]:
        """The per-link overrides (normalised keys; do not mutate)."""
        return self._overrides

    # ------------------------------------------------------------ properties

    def _specs(self) -> Iterable[LinkSpec]:
        yield self.default
        yield from self._overrides.values()

    @property
    def uniform_latency(self) -> bool:
        """Every link generates at the same ``t_epr``."""
        return all(spec.t_epr == self.default.t_epr for spec in self._specs())

    @property
    def deterministic(self) -> bool:
        """Every link succeeds on the first attempt (``p_epr = 1``)."""
        return all(spec.p_epr >= 1.0 for spec in self._specs())

    @property
    def has_capacities(self) -> bool:
        """Some link bounds its concurrent EPR generations."""
        return any(spec.capacity is not None for spec in self._specs())

    @property
    def uniform(self) -> bool:
        """Indistinguishable from the legacy single-``t_epr`` assumption.

        Uniform models take the exact pre-link-model code paths (unit-weight
        routing, global-latency derivation, pair-level EPR sampling), so
        compilation and simulation output stays bit-identical to a network
        without a link model.
        """
        return (self.uniform_latency and self.deterministic
                and not self.has_capacities)

    # ---------------------------------------------------------------- routing

    def routing_weights(self, links: Iterable[Link]
                        ) -> Optional[Dict[Link, float]]:
        """Per-link latency weights over ``links`` for the routing table.

        Routes then minimise the route's *total link latency* — the EPR
        generation volume the route engages, which is also what capacity
        booking and physical-pair accounting see.  At the default
        ``swap_overhead = 1.0`` this total equals the derived end-to-end
        pair latency (:func:`combine_link_latencies`), so routing is
        latency-optimal there; for other overheads the derived latency
        follows the chosen route consistently across compiler and
        simulator, but a route optimal under the combined formula may
        differ (the peak term is not edge-additive) — a documented
        approximation.

        ``None`` when every link has the same latency: the routing table
        then runs the unit-weight (hop-count) search, whose arithmetic — and
        therefore whose lexicographic tie-breaking — is bit-identical to the
        pre-link-model code.
        """
        if self.uniform_latency:
            return None
        return {_normalise(a, b): self.t_epr(a, b) for a, b in links}

    def route_latency(self, links: Sequence[Link],
                      swap_overhead: float) -> float:
        """End-to-end EPR latency of a route over ``links``."""
        return combine_link_latencies(
            [self.t_epr(a, b) for a, b in links], swap_overhead)

    # -------------------------------------------------------------- validation

    def validate_for_graph(self, graph: nx.Graph) -> None:
        """Raise when an override names a link the topology does not have."""
        for (a, b) in self._overrides:
            if not graph.has_edge(a, b):
                raise ValueError(
                    f"link spec names ({a}, {b}), which is not a link of "
                    "the topology")

    # --------------------------------------------------------------- reporting

    def describe(self) -> str:
        """Short human-readable heterogeneity summary for reports.

        Distinguishes per-link overrides from a heterogeneous *default*
        spec (lossy or capacity-bearing on every link), which carries zero
        overrides but is anything but uniform.
        """
        if self.uniform:
            return "uniform"
        if self._overrides:
            count = len(self._overrides)
            return f"{count} link override{'s' if count != 1 else ''}"
        return "heterogeneous default spec"

    def as_dict(self) -> Dict[str, object]:
        return {
            "default": self.default.as_dict(),
            "links": {f"{a}-{b}": spec.as_dict()
                      for (a, b), spec in sorted(self._overrides.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "uniform" if self.uniform else "heterogeneous"
        return (f"LinkModel({kind}, default={self.default}, "
                f"overrides={len(self._overrides)})")


def combine_link_latencies(latencies: Sequence[float],
                           swap_overhead: float) -> float:
    """End-to-end EPR latency of one entanglement-swapping route.

    All links generate concurrently, so the slowest link's generation sits
    on the critical path at full cost; every other link contributes its
    ``swap_overhead`` share (the Bell-measurement splice it feeds).  With
    the default ``swap_overhead = 1.0`` this is simply the sum of the route's
    link latencies.  Uniform inputs take the legacy
    ``t_epr * (1 + swap_overhead * (hops - 1))`` arithmetic verbatim so the
    derived value is bit-identical to the pre-link-model formula.
    """
    if not latencies:
        raise ValueError("a route needs at least one link")
    peak = max(latencies)
    if all(latency == peak for latency in latencies):
        return peak * (1.0 + swap_overhead * (len(latencies) - 1))
    return peak + swap_overhead * (sum(latencies) - peak)


# ---------------------------------------------------------------------------
# Spec-file parsing
# ---------------------------------------------------------------------------

def _spec_fields(raw: object, where: str) -> Dict[str, object]:
    if not isinstance(raw, Mapping):
        raise ValueError(f"link-spec entry {where!r} must be an object, "
                         f"got {type(raw).__name__}")
    known = {"t_epr", "capacity", "p_epr"}
    unknown = set(raw) - known
    if unknown:
        raise ValueError(f"unknown fields {sorted(unknown)} in link-spec "
                         f"entry {where!r}; expected {sorted(known)}")
    return dict(raw)


def _parse_link_name(name: str) -> Link:
    parts = name.replace(",", "-").split("-")
    if len(parts) != 2:
        raise ValueError(f"link name {name!r} is not of the form 'a-b'")
    try:
        a, b = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(f"link name {name!r} is not of the form 'a-b'") \
            from None
    return _normalise(a, b)


def load_link_spec(path: Union[str, Path], base_t_epr: float) -> LinkModel:
    """Parse a JSON link-spec file into a :class:`LinkModel`."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"link-spec file {path} is not valid JSON: {exc}") \
            from None
    if not isinstance(data, Mapping):
        raise ValueError(f"link-spec file {path} must contain a JSON object")
    return LinkModel.from_spec(data, base_t_epr)


# ---------------------------------------------------------------------------
# Topology-parameterised profiles
# ---------------------------------------------------------------------------

def distance_scaled(graph: nx.Graph, t_epr: float,
                    scale: float = 1.0) -> LinkModel:
    """Fibre length grows with the index distance of a link's endpoints.

    Nodes are assumed laid out in index order, so a link between distant
    indices models a longer fibre: ``t_epr_link = t_epr * (1 + scale *
    (|a - b| - 1))``.  Adjacent-index links keep the base latency; a ring's
    wrap-around link, a grid's vertical links and a star's high-index spokes
    become progressively slower.  (On a line every link joins adjacent
    indices, so this profile degenerates to uniform there — use an explicit
    link spec for a heterogeneous line.)
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    overrides = {}
    for a, b in graph.edges:
        # Adjacent-index links equal the default spec; storing them as
        # overrides would misreport every link as heterogeneous.
        if abs(a - b) > 1 and scale > 0:
            overrides[_normalise(a, b)] = LinkSpec(
                t_epr=t_epr * (1.0 + scale * (abs(a - b) - 1)))
    return LinkModel(LinkSpec(t_epr=t_epr), overrides)


def noisy_spine(graph: nx.Graph, t_epr: float, factor: float = 2.0,
                p_epr: float = 1.0,
                capacity: Optional[int] = None) -> LinkModel:
    """Links through the busiest node are slow, lossy repeater links.

    The "spine" node is the highest-degree node (lowest index on ties) —
    a star's hub, a line's or grid's centre.  Every link incident to it is
    degraded: latency scaled by ``factor``, per-attempt success probability
    ``p_epr``, and optionally a concurrent-generation ``capacity``.  All
    other links stay at the clean base spec.
    """
    if factor < 1.0:
        raise ValueError("factor must be >= 1")
    if graph.number_of_edges() == 0:
        return LinkModel(LinkSpec(t_epr=t_epr))
    spine = min(sorted(graph.nodes), key=lambda n: (-graph.degree(n), n))
    overrides = {}
    for neighbour in graph.neighbors(spine):
        key = _normalise(spine, neighbour)
        overrides[key] = LinkSpec(t_epr=t_epr * factor, p_epr=p_epr,
                                  capacity=capacity)
    return LinkModel(LinkSpec(t_epr=t_epr), overrides)


#: Named link-model presets accepted by the CLI's ``--link-profile``.
LINK_PROFILES = {
    "distance_scaled": distance_scaled,
    "noisy_spine": noisy_spine,
}


def link_model_from_profile(name: str, graph: nx.Graph,
                            t_epr: float, **kwargs: object) -> LinkModel:
    """Build a preset link model for a topology graph."""
    try:
        builder = LINK_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown link profile {name!r}; choose from "
            f"{sorted(LINK_PROFILES)}") from None
    return builder(graph, t_epr, **kwargs)  # type: ignore[operator]
