"""Quantum node model.

A :class:`QuantumNode` is one modular quantum processor in a distributed
system.  It holds a fixed number of *data* qubits (which store program
state) and *communication* qubits (which hold remote EPR halves during
Cat-Comm / TP-Comm).  The AutoComm paper assumes two communication qubits per
node, which is the default here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QuantumNode"]


@dataclass(frozen=True)
class QuantumNode:
    """One quantum processor in the distributed system.

    Attributes:
        index: node id within the network.
        num_data_qubits: data-qubit capacity of the node.
        num_comm_qubits: number of communication qubits (EPR endpoints) the
            node can hold simultaneously; the paper assumes 2.
        name: optional human-readable label.
    """

    index: int
    num_data_qubits: int
    num_comm_qubits: int = 2
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("node index must be non-negative")
        if self.num_data_qubits <= 0:
            raise ValueError("a node must hold at least one data qubit")
        if self.num_comm_qubits < 1:
            raise ValueError("a node needs at least one communication qubit")
        if not self.name:
            object.__setattr__(self, "name", f"node{self.index}")

    @property
    def total_qubits(self) -> int:
        """Physical qubit count: data plus communication qubits."""
        return self.num_data_qubits + self.num_comm_qubits

    def can_host(self, num_program_qubits: int) -> bool:
        """True when ``num_program_qubits`` program qubits fit on this node."""
        return num_program_qubits <= self.num_data_qubits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QuantumNode({self.name}, data={self.num_data_qubits}, "
                f"comm={self.num_comm_qubits})")
