"""Latency model for distributed quantum programs.

All latencies are expressed in units of one CX gate time, following Table 1
of the AutoComm paper:

==========================  ========  =========
operation                   symbol    latency
==========================  ========  =========
single-qubit gate           t1q       0.1
CX / CZ gate                t2q       1
measurement                 tms       5
remote EPR pair preparation tep       12
one classical bit transfer  tcb       1
==========================  ========  =========

Derived quantities used throughout the scheduler:

* ``t_tele`` — one qubit teleportation (CX + H + two measurements in
  parallel + two classical bits + corrections) ≈ 8 CX, matching the "about 8
  CX time" figure quoted in Section 4.4.
* ``t_cat_entangle`` / ``t_cat_disentangle`` — the two halves of the
  cat-comm protocol of Figure 2(a).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable

from ..ir.gates import Gate

__all__ = ["LatencyModel", "DEFAULT_LATENCY"]


@dataclass(frozen=True)
class LatencyModel:
    """Operation latencies, normalised to the CX gate time."""

    t_1q: float = 0.1
    t_2q: float = 1.0
    t_measure: float = 5.0
    t_epr: float = 12.0
    t_classical_bit: float = 1.0

    # ------------------------------------------------------------ derived

    @property
    def t_teleport(self) -> float:
        """Latency of teleporting one qubit once the EPR pair is ready.

        CX + H + measurement (both measurements run in parallel) + classical
        transfer + the worst-case two local corrections.
        """
        return (self.t_2q + self.t_1q + self.t_measure
                + self.t_classical_bit + 2 * self.t_1q)

    @property
    def t_cat_entangle(self) -> float:
        """Cat-entangler: local CX + measurement + classical bit + X correction."""
        return self.t_2q + self.t_measure + self.t_classical_bit + self.t_1q

    @property
    def t_cat_disentangle(self) -> float:
        """Cat-disentangler: H + measurement + classical bit + Z correction."""
        return self.t_1q + self.t_measure + self.t_classical_bit + self.t_1q

    # ------------------------------------------------------------ queries

    def gate_latency(self, gate: Gate) -> float:
        """Latency of one local gate."""
        if gate.is_barrier:
            return 0.0
        if gate.name == "measure":
            return self.t_measure
        if gate.name == "reset":
            return self.t_measure + self.t_1q
        if gate.num_qubits == 1:
            return self.t_1q
        # Local multi-qubit gates count as CX-equivalents per constituent CX;
        # callers normally decompose first, so this is a conservative default.
        return self.t_2q

    def body_latency(self, gates: Iterable[Gate]) -> float:
        """Latency of executing a gate sequence locally (2q + 1q costs).

        The shared accounting for the body of a communication block: used by
        the TP-chain duration in the scheduler and by the execution
        simulator's hop timestamps, so the two can never drift apart.
        """
        total = 0.0
        for gate in gates:
            if gate.is_multi_qubit:
                total += self.t_2q
            elif gate.is_single_qubit:
                total += self.t_1q
        return total

    def cat_comm_latency(self, num_local_2q: int, num_local_1q: int = 0) -> float:
        """Latency of one Cat-Comm invocation executing a block locally.

        Does not include EPR preparation (the scheduler accounts for EPR
        pipelining explicitly).
        """
        body = num_local_2q * self.t_2q + num_local_1q * self.t_1q
        return self.t_cat_entangle + body + self.t_cat_disentangle

    def tp_comm_latency(self, num_local_2q: int, num_local_1q: int = 0) -> float:
        """Latency of one TP-Comm block: teleport, run the block, teleport back."""
        body = num_local_2q * self.t_2q + num_local_1q * self.t_1q
        return 2 * self.t_teleport + body

    def with_overrides(self, **kwargs: float) -> "LatencyModel":
        """Return a copy with selected latencies replaced."""
        return replace(self, **kwargs)

    def as_dict(self) -> Dict[str, float]:
        return {
            "t_1q": self.t_1q,
            "t_2q": self.t_2q,
            "t_measure": self.t_measure,
            "t_epr": self.t_epr,
            "t_classical_bit": self.t_classical_bit,
            "t_teleport": self.t_teleport,
            "t_cat_entangle": self.t_cat_entangle,
            "t_cat_disentangle": self.t_cat_disentangle,
        }


#: The paper's Table 1 latency configuration.
DEFAULT_LATENCY = LatencyModel()
