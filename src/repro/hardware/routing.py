"""Entanglement routing over constrained network topologies.

When the link graph is not all-to-all, a remote EPR pair between two
non-adjacent nodes is built by *entanglement swapping*: one physical EPR
pair is generated on every link of a path between the nodes, and Bell
measurements at the intermediate nodes splice them into one end-to-end
pair.  This module precomputes a shortest-path :class:`EPRRoute` for every
node pair of a topology and answers the questions the compiler and the
execution simulator ask about it:

* how many *physical* EPR pairs one end-to-end pair consumes
  (``num_hops`` — swaps included, one per link of the route);
* which physical links are engaged while the pair is being distilled
  (``links`` — the simulator books contention on these, not on the
  end-to-end pair);
* how far apart two nodes are (``hop_matrix`` — the OEE partitioner can
  weight interaction-graph edges by it).

Routes are deterministic: ties between equal-length shortest paths are
broken lexicographically by node index, so every build of the same
topology yields the same routing table.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

__all__ = ["EPRRoute", "RoutingTable"]


@dataclass(frozen=True)
class EPRRoute:
    """Shortest entanglement-swapping path between two nodes.

    ``path`` lists the nodes visited in order, endpoints included; a direct
    link has ``path = (a, b)`` and zero swaps.
    """

    path: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("a route needs at least two nodes")

    @property
    def source(self) -> int:
        return self.path[0]

    @property
    def target(self) -> int:
        return self.path[-1]

    @property
    def num_hops(self) -> int:
        """Physical links traversed — also the physical EPR pairs consumed."""
        return len(self.path) - 1

    @property
    def num_swaps(self) -> int:
        """Entanglement swaps performed at intermediate nodes."""
        return len(self.path) - 2

    @property
    def links(self) -> Tuple[Tuple[int, int], ...]:
        """The physical links of the route as normalised (low, high) pairs."""
        return tuple((a, b) if a < b else (b, a)
                     for a, b in zip(self.path, self.path[1:]))

    def reversed(self) -> "EPRRoute":
        return EPRRoute(path=tuple(reversed(self.path)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "EPRRoute(" + "-".join(str(n) for n in self.path) + ")"


class RoutingTable:
    """Shortest-path EPR routes for every node pair of a link graph.

    Built once per :class:`~repro.hardware.network.QuantumNetwork` by
    :func:`~repro.hardware.topology.apply_topology`; the compiler passes and
    the execution simulator share it through the network object.
    """

    def __init__(self, graph: nx.Graph) -> None:
        nodes = sorted(graph.nodes)
        if nodes != list(range(len(nodes))):
            raise ValueError("routing expects nodes labelled 0..k-1")
        if any(a == b for a, b in graph.edges):
            raise ValueError("link graph must not contain self-loops")
        if len(nodes) > 1 and not nx.is_connected(graph):
            raise ValueError("topology graph must be connected")
        self.num_nodes = len(nodes)
        self._routes: Dict[Tuple[int, int], EPRRoute] = {}
        for source in nodes:
            for path in _lexicographic_shortest_paths(graph, source):
                target = path[-1]
                if source < target:
                    self._routes[(source, target)] = EPRRoute(path=tuple(path))

    # ------------------------------------------------------------------ lookup

    def route(self, node_a: int, node_b: int) -> EPRRoute:
        """The route from ``node_a`` to ``node_b`` (oriented that way)."""
        if node_a == node_b:
            raise ValueError("EPR routes connect distinct nodes")
        if node_a < node_b:
            return self._routes[(node_a, node_b)]
        return self._routes[(node_b, node_a)].reversed()

    def hops(self, node_a: int, node_b: int) -> int:
        """Physical EPR pairs consumed by one end-to-end pair (1 = direct)."""
        return self.route(node_a, node_b).num_hops

    def links(self, node_a: int, node_b: int) -> Tuple[Tuple[int, int], ...]:
        """Physical links engaged while the end-to-end pair is generated."""
        return self.route(node_a, node_b).links

    # --------------------------------------------------------------- summaries

    @property
    def uniform(self) -> bool:
        """True when every pair is one hop apart (all-to-all connectivity)."""
        return all(route.num_hops == 1 for route in self._routes.values())

    def hop_matrix(self) -> List[List[int]]:
        """Dense node-by-node hop-count matrix (zeros on the diagonal)."""
        matrix = [[0] * self.num_nodes for _ in range(self.num_nodes)]
        for (a, b), route in self._routes.items():
            matrix[a][b] = matrix[b][a] = route.num_hops
        return matrix

    def max_hops(self) -> int:
        """Network diameter in hops (0 for a single-node network)."""
        return max((route.num_hops for route in self._routes.values()),
                   default=0)

    def all_routes(self) -> List[EPRRoute]:
        """Every stored route, one per unordered pair, sorted by endpoints."""
        return [self._routes[pair] for pair in sorted(self._routes)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RoutingTable(nodes={self.num_nodes}, "
                f"max_hops={self.max_hops()})")


def _lexicographic_shortest_paths(graph: nx.Graph,
                                  source: int) -> List[List[int]]:
    """Shortest paths from ``source``, ties broken by smallest node sequence.

    A Dijkstra-style search over (distance, path) keys: among equal-length
    paths the lexicographically smallest node sequence wins, making the
    routing table independent of edge insertion order.
    """
    best: Dict[int, Tuple[int, Tuple[int, ...]]] = {source: (0, (source,))}
    heap: List[Tuple[int, Tuple[int, ...]]] = [(0, (source,))]
    while heap:
        dist, path = heapq.heappop(heap)
        node = path[-1]
        if best.get(node) != (dist, path):
            continue
        for neighbour in graph.neighbors(node):
            candidate = (dist + 1, path + (neighbour,))
            known = best.get(neighbour)
            if known is None or candidate < known:
                best[neighbour] = candidate
                heapq.heappush(heap, candidate)
    return [list(path) for _, path in
            sorted(best.values(), key=lambda entry: entry[1][-1])
            if len(path) > 1]
