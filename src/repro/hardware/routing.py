"""Entanglement routing over constrained network topologies.

When the link graph is not all-to-all, a remote EPR pair between two
non-adjacent nodes is built by *entanglement swapping*: one physical EPR
pair is generated on every link of a path between the nodes, and Bell
measurements at the intermediate nodes splice them into one end-to-end
pair.  This module precomputes a shortest-path :class:`EPRRoute` for every
node pair of a topology and answers the questions the compiler and the
execution simulator ask about it:

* how many *physical* EPR pairs one end-to-end pair consumes
  (``num_hops`` — swaps included, one per link of the route);
* which physical links are engaged while the pair is being distilled
  (``links`` — the simulator books contention on these, not on the
  end-to-end pair);
* how far apart two nodes are (``hop_matrix`` / ``cost_matrix`` — the OEE
  partitioner weights interaction-graph edges by the latter).

Routes are *latency-weighted* when the table is built with per-link weights
(a heterogeneous :class:`~repro.hardware.links.LinkModel` supplies its link
latencies): the route between two nodes minimises the sum of link weights,
so traffic detours around slow fibres even when that costs extra hops.
Without weights every link counts 1 and the table degenerates to hop-count
shortest paths — byte-for-byte the same routes as before weights existed
(the unit-weight property test asserts this on every supported topology).

Routes are deterministic: ties between equal-cost shortest paths are
broken by hop count (fewer physical EPR pairs) and then lexicographically
by node sequence, so every build of the same topology yields the same
routing table.  On unit weights cost *is* the hop count, so the tie-break
degenerates to the pure lexicographic rule of the pre-weight code.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

import networkx as nx

__all__ = ["EPRRoute", "RoutingTable"]

#: Edge weights accepted by :class:`RoutingTable`: normalised (low, high)
#: link -> positive cost.
LinkWeights = Mapping[Tuple[int, int], float]


@dataclass(frozen=True)
class EPRRoute:
    """Shortest entanglement-swapping path between two nodes.

    ``path`` lists the nodes visited in order, endpoints included; a direct
    link has ``path = (a, b)`` and zero swaps.
    """

    path: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("a route needs at least two nodes")

    @property
    def source(self) -> int:
        return self.path[0]

    @property
    def target(self) -> int:
        return self.path[-1]

    @property
    def num_hops(self) -> int:
        """Physical links traversed — also the physical EPR pairs consumed."""
        return len(self.path) - 1

    @property
    def num_swaps(self) -> int:
        """Entanglement swaps performed at intermediate nodes."""
        return len(self.path) - 2

    @property
    def links(self) -> Tuple[Tuple[int, int], ...]:
        """The physical links of the route as normalised (low, high) pairs."""
        return tuple((a, b) if a < b else (b, a)
                     for a, b in zip(self.path, self.path[1:]))

    def reversed(self) -> "EPRRoute":
        return EPRRoute(path=tuple(reversed(self.path)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "EPRRoute(" + "-".join(str(n) for n in self.path) + ")"


class RoutingTable:
    """Shortest-path EPR routes for every node pair of a link graph.

    Built once per :class:`~repro.hardware.network.QuantumNetwork` by
    :func:`~repro.hardware.topology.apply_topology`; the compiler passes and
    the execution simulator share it through the network object.
    """

    def __init__(self, graph: nx.Graph,
                 weights: Optional[LinkWeights] = None) -> None:
        nodes = sorted(graph.nodes)
        if nodes != list(range(len(nodes))):
            raise ValueError("routing expects nodes labelled 0..k-1")
        if any(a == b for a, b in graph.edges):
            raise ValueError("link graph must not contain self-loops")
        if len(nodes) > 1 and not nx.is_connected(graph):
            raise ValueError("topology graph must be connected")
        self.num_nodes = len(nodes)
        #: The physical links the table was built from, as normalised
        #: (low, high) pairs — ground truth for static route verification
        #: (:mod:`repro.verify`), independent of the stored routes.
        self.physical_links = frozenset(
            (a, b) if a < b else (b, a) for a, b in graph.edges)
        self.weighted = weights is not None
        if weights is not None:
            weights = {((a, b) if a < b else (b, a)): float(w)
                       for (a, b), w in weights.items()}
            missing = [link for link in
                       (tuple(sorted(edge)) for edge in graph.edges)
                       if link not in weights]
            if missing:
                raise ValueError("missing routing weights for links "
                                 f"{sorted(missing)}")
            if any(not (w > 0) for w in weights.values()):  # NaN-safe
                raise ValueError("routing weights must be positive")
        self._weights = weights
        self._routes: Dict[Tuple[int, int], EPRRoute] = {}
        self._costs: Dict[Tuple[int, int], float] = {}
        for source in nodes:
            for cost, path in _lexicographic_shortest_paths(graph, source,
                                                            weights):
                target = path[-1]
                if source < target:
                    self._routes[(source, target)] = EPRRoute(path=tuple(path))
                    self._costs[(source, target)] = cost

    # ------------------------------------------------------------------ lookup

    def route(self, node_a: int, node_b: int) -> EPRRoute:
        """The route from ``node_a`` to ``node_b`` (oriented that way)."""
        if node_a == node_b:
            raise ValueError("EPR routes connect distinct nodes")
        if node_a < node_b:
            return self._routes[(node_a, node_b)]
        return self._routes[(node_b, node_a)].reversed()

    def hops(self, node_a: int, node_b: int) -> int:
        """Physical EPR pairs consumed by one end-to-end pair (1 = direct)."""
        return self.route(node_a, node_b).num_hops

    def links(self, node_a: int, node_b: int) -> Tuple[Tuple[int, int], ...]:
        """Physical links engaged while the end-to-end pair is generated."""
        return self.route(node_a, node_b).links

    def route_cost(self, node_a: int, node_b: int) -> float:
        """Weight sum of the chosen route (= hop count without weights)."""
        if node_a == node_b:
            raise ValueError("EPR routes connect distinct nodes")
        return self._costs[(node_a, node_b) if node_a < node_b
                           else (node_b, node_a)]

    # --------------------------------------------------------------- summaries

    @property
    def uniform(self) -> bool:
        """True when every pair is one hop apart (all-to-all connectivity)."""
        return all(route.num_hops == 1 for route in self._routes.values())

    def hop_matrix(self) -> List[List[int]]:
        """Dense node-by-node hop-count matrix (zeros on the diagonal)."""
        matrix = [[0] * self.num_nodes for _ in range(self.num_nodes)]
        for (a, b), route in self._routes.items():
            matrix[a][b] = matrix[b][a] = route.num_hops
        return matrix

    def cost_matrix(self) -> List[List[float]]:
        """Dense node-by-node route-cost matrix (zeros on the diagonal).

        Entries are the weight sums of the chosen routes — link-latency sums
        when the table was built from a heterogeneous link model.  Without
        weights every entry equals the hop count (same integers as
        :meth:`hop_matrix`), which keeps consumers like the OEE partitioner
        bit-identical to the pre-weight arithmetic on uniform links.
        """
        matrix: List[List[float]] = [
            [0] * self.num_nodes for _ in range(self.num_nodes)]
        for (a, b), cost in self._costs.items():
            matrix[a][b] = matrix[b][a] = cost
        return matrix

    def max_hops(self) -> int:
        """Network diameter in hops (0 for a single-node network)."""
        return max((route.num_hops for route in self._routes.values()),
                   default=0)

    def all_routes(self) -> List[EPRRoute]:
        """Every stored route, one per unordered pair, sorted by endpoints."""
        return [self._routes[pair] for pair in sorted(self._routes)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RoutingTable(nodes={self.num_nodes}, "
                f"max_hops={self.max_hops()})")


def _lexicographic_shortest_paths(
        graph: nx.Graph, source: int,
        weights: Optional[LinkWeights] = None
) -> List[Tuple[Union[int, float], List[int]]]:
    """Cheapest paths from ``source``, ties broken by smallest node sequence.

    A Dijkstra-style search over (distance, hops, path) keys: among
    equal-cost paths the one with fewer hops wins (fewer physical EPR
    pairs consumed), then the lexicographically smallest node sequence,
    making the routing table independent of edge insertion order.  Without
    ``weights`` every link costs 1 — distance *is* the hop count, so the
    middle key component is redundant and the selected routes are exactly
    the pre-weight (distance, path) search's.  With weights a link costs
    its weight and the search minimises the weight sum.
    """
    best: Dict[int, Tuple[Union[int, float], int, Tuple[int, ...]]] = {
        source: (0, 0, (source,))}
    heap: List[Tuple[Union[int, float], int, Tuple[int, ...]]] = [
        (0, 0, (source,))]
    while heap:
        entry = heapq.heappop(heap)
        dist, hops, path = entry
        node = path[-1]
        if best.get(node) != entry:
            continue
        for neighbour in graph.neighbors(node):
            if weights is None:
                step = 1
            else:
                step = weights[(node, neighbour) if node < neighbour
                               else (neighbour, node)]
            candidate = (dist + step, hops + 1, path + (neighbour,))
            known = best.get(neighbour)
            if known is None or candidate < known:
                best[neighbour] = candidate
                heapq.heappush(heap, candidate)
    return [(dist, list(path)) for dist, _, path in
            sorted(best.values(), key=lambda entry: entry[2][-1])
            if len(path) > 1]
