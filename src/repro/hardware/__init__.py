"""Distributed quantum hardware model: nodes, networks, links, resources."""

from .node import QuantumNode
from .network import QuantumNetwork, uniform_network
from .timing import LatencyModel, DEFAULT_LATENCY
from .epr import CommResourceTracker, Reservation, SlotSchedule
from .links import (LinkModel, LinkSpec, combine_link_latencies,
                    link_model_from_profile, load_link_spec, LINK_PROFILES)
from .routing import EPRRoute, RoutingTable
from .topology import apply_topology, topology_graph, hop_counts, SUPPORTED_TOPOLOGIES

__all__ = [
    "EPRRoute",
    "RoutingTable",
    "QuantumNode",
    "QuantumNetwork",
    "uniform_network",
    "LatencyModel",
    "DEFAULT_LATENCY",
    "LinkModel",
    "LinkSpec",
    "combine_link_latencies",
    "link_model_from_profile",
    "load_link_spec",
    "LINK_PROFILES",
    "CommResourceTracker",
    "Reservation",
    "SlotSchedule",
    "apply_topology",
    "topology_graph",
    "hop_counts",
    "SUPPORTED_TOPOLOGIES",
]
