"""Communication-qubit resource tracking.

Every remote communication (one Cat-Comm invocation or one qubit
teleportation) occupies one communication qubit on each of the two nodes
involved for the duration of the protocol.  With only two communication
qubits per node (the paper's near-term assumption), at most two remote
communications can be in flight at any node simultaneously.

:class:`CommResourceTracker` keeps, per node, the set of busy time intervals
on each communication qubit and answers "when is the earliest time at or
after ``t`` when this node has a free communication qubit for ``duration``
time units?".  The block scheduler in :mod:`repro.core.scheduling` and the
baseline schedulers both build on it, so the resource constraint is applied
identically to every compiler being compared.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .network import QuantumNetwork

__all__ = ["CommResourceTracker", "Reservation", "SlotSchedule"]


class SlotSchedule:
    """Busy-interval bookkeeping across ``num_slots`` identical slots.

    The generic core of :class:`CommResourceTracker` (one instance per node's
    communication qubits); the execution simulator reuses it for per-link
    EPR-generation contention queues.
    """

    def __init__(self, num_slots: int) -> None:
        if num_slots <= 0:
            raise ValueError("a slot schedule needs at least one slot")
        # intervals[slot] = sorted list of (start, end) busy windows.
        self.intervals: List[List[Tuple[float, float]]] = [
            [] for _ in range(num_slots)]

    @property
    def num_slots(self) -> int:
        return len(self.intervals)

    def slot_free(self, slot: int, start: float, end: float) -> bool:
        """True when ``slot`` is idle over ``[start, end)``."""
        for (s, e) in self.intervals[slot]:
            if s < end and start < e:
                return False
        return True

    def earliest_on_slot(self, slot: int, duration: float,
                         not_before: float) -> float:
        intervals = self.intervals[slot]
        start = not_before
        for (s, e) in intervals:
            if start + duration <= s:
                return start
            if e > start:
                start = e
        return start

    def earliest(self, duration: float,
                 not_before: float = 0.0) -> Tuple[float, int]:
        """Earliest (start, slot) at or after ``not_before`` with room for ``duration``."""
        best_start: Optional[float] = None
        best_slot = 0
        for slot in range(self.num_slots):
            start = self.earliest_on_slot(slot, duration, not_before)
            if best_start is None or start < best_start:
                best_start, best_slot = start, slot
        assert best_start is not None
        return best_start, best_slot

    def earliest_multi(self, duration: float, count: int,
                       not_before: float = 0.0) -> float:
        """Earliest start with ``count`` slots simultaneously free for ``duration``.

        Needed by the execution simulator when several EPR generations of
        one operation ride the same physical link (a fused chain revisiting
        a link, or two routed pairs sharing one).  Candidate starts are
        ``not_before`` and the ends of busy intervals after it — the only
        instants where a slot becomes free.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if count > self.num_slots:
            raise ValueError(
                f"need {count} concurrent slots but only {self.num_slots} exist")
        candidates = {not_before}
        candidates.update(e for slot in self.intervals for (_, e) in slot
                          if e > not_before)
        for start in sorted(candidates):
            free = sum(1 for slot in range(self.num_slots)
                       if self.slot_free(slot, start, start + duration))
            if free >= count:
                return start
        raise RuntimeError("no feasible start found")  # pragma: no cover

    def book(self, start: float, end: float,
             slot: Optional[int] = None) -> int:
        """Mark ``[start, end)`` busy on ``slot`` (or the first free slot)."""
        if end < start:
            raise ValueError("reservation end precedes start")
        if slot is None:
            for candidate in range(self.num_slots):
                if self.slot_free(candidate, start, end):
                    slot = candidate
                    break
            else:
                raise ValueError(f"no free slot in [{start}, {end})")
        elif not self.slot_free(slot, start, end):
            raise ValueError(f"slot {slot} is busy in [{start}, {end})")
        insort(self.intervals[slot], (start, end))
        return slot

    def busy_time(self) -> float:
        """Total busy time summed over all slots."""
        return sum(e - s for slot in self.intervals for (s, e) in slot)

    def makespan(self) -> float:
        return max((e for slot in self.intervals for (_, e) in slot),
                   default=0.0)


@dataclass(frozen=True)
class Reservation:
    """A booked interval on one communication qubit of one node."""

    node: int
    slot: int
    start: float
    end: float
    label: str = ""


class CommResourceTracker:
    """Interval-based occupancy tracker for communication qubits."""

    def __init__(self, network: QuantumNetwork) -> None:
        self.network = network
        self._schedules: Dict[int, SlotSchedule] = {
            node.index: SlotSchedule(node.num_comm_qubits) for node in network
        }
        self.reservations: List[Reservation] = []

    # ----------------------------------------------------------------- queries

    def slot_free(self, node: int, slot: int, start: float, end: float) -> bool:
        """True when ``slot`` of ``node`` is idle over ``[start, end)``."""
        return self._schedules[node].slot_free(slot, start, end)

    def earliest_slot(self, node: int, duration: float,
                      not_before: float = 0.0) -> Tuple[float, int]:
        """Earliest (start, slot) at or after ``not_before`` with ``duration`` free."""
        return self._schedules[node].earliest(duration, not_before)

    def earliest_joint(self, nodes: Sequence[int], duration: float,
                       not_before: float = 0.0) -> Tuple[float, Dict[int, int]]:
        """Earliest start time when *every* node in ``nodes`` has a free slot.

        Returns the start time and the chosen slot per node.  Uses a simple
        fixed-point iteration: propose the max of per-node earliest starts,
        re-check each node at that time, repeat until stable.
        """
        time = not_before
        for _ in range(1000):
            slots: Dict[int, int] = {}
            proposal = time
            for node in nodes:
                start, slot = self.earliest_slot(node, duration, time)
                slots[node] = slot
                proposal = max(proposal, start)
            if proposal == time:
                return time, slots
            time = proposal
        raise RuntimeError("resource search did not converge")  # pragma: no cover

    # ------------------------------------------------------------------ booking

    def reserve(self, node: int, start: float, end: float,
                slot: Optional[int] = None, label: str = "") -> Reservation:
        """Book ``[start, end)`` on a communication qubit of ``node``.

        When ``slot`` is omitted the first free slot is used.  Raises
        ``ValueError`` if no slot is free for the whole interval.
        """
        try:
            booked = self._schedules[node].book(start, end, slot=slot)
        except ValueError as exc:
            raise ValueError(f"node {node}: {exc}") from None
        reservation = Reservation(node=node, slot=booked, start=start, end=end,
                                  label=label)
        self.reservations.append(reservation)
        return reservation

    # ---------------------------------------------------------------- reporting

    def utilisation(self, node: int, horizon: Optional[float] = None) -> float:
        """Fraction of busy time across the node's communication qubits."""
        if horizon is None:
            horizon = self.makespan()
        if horizon <= 0:
            return 0.0
        schedule = self._schedules[node]
        return schedule.busy_time() / (horizon * schedule.num_slots)

    def makespan(self) -> float:
        """Latest reservation end time across the whole network."""
        return max((schedule.makespan()
                    for schedule in self._schedules.values()), default=0.0)

    def num_reservations(self) -> int:
        return len(self.reservations)
