"""Communication-qubit resource tracking.

Every remote communication (one Cat-Comm invocation or one qubit
teleportation) occupies one communication qubit on each of the two nodes
involved for the duration of the protocol.  With only two communication
qubits per node (the paper's near-term assumption), at most two remote
communications can be in flight at any node simultaneously.

:class:`CommResourceTracker` keeps, per node, the set of busy time intervals
on each communication qubit and answers "when is the earliest time at or
after ``t`` when this node has a free communication qubit for ``duration``
time units?".  The block scheduler in :mod:`repro.core.scheduling` and the
baseline schedulers both build on it, so the resource constraint is applied
identically to every compiler being compared.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .network import QuantumNetwork

__all__ = ["CommResourceTracker", "Reservation"]


@dataclass(frozen=True)
class Reservation:
    """A booked interval on one communication qubit of one node."""

    node: int
    slot: int
    start: float
    end: float
    label: str = ""


class CommResourceTracker:
    """Interval-based occupancy tracker for communication qubits."""

    def __init__(self, network: QuantumNetwork) -> None:
        self.network = network
        # busy[node][slot] = sorted list of (start, end) intervals
        self._busy: Dict[int, List[List[Tuple[float, float]]]] = {
            node.index: [[] for _ in range(node.num_comm_qubits)]
            for node in network
        }
        self.reservations: List[Reservation] = []

    # ----------------------------------------------------------------- queries

    def slot_free(self, node: int, slot: int, start: float, end: float) -> bool:
        """True when ``slot`` of ``node`` is idle over ``[start, end)``."""
        for (s, e) in self._busy[node][slot]:
            if s < end and start < e:
                return False
        return True

    def earliest_slot(self, node: int, duration: float,
                      not_before: float = 0.0) -> Tuple[float, int]:
        """Earliest (start, slot) at or after ``not_before`` with ``duration`` free."""
        best_start: Optional[float] = None
        best_slot = 0
        for slot in range(len(self._busy[node])):
            start = self._earliest_on_slot(node, slot, duration, not_before)
            if best_start is None or start < best_start:
                best_start, best_slot = start, slot
        assert best_start is not None
        return best_start, best_slot

    def earliest_joint(self, nodes: Sequence[int], duration: float,
                       not_before: float = 0.0) -> Tuple[float, Dict[int, int]]:
        """Earliest start time when *every* node in ``nodes`` has a free slot.

        Returns the start time and the chosen slot per node.  Uses a simple
        fixed-point iteration: propose the max of per-node earliest starts,
        re-check each node at that time, repeat until stable.
        """
        time = not_before
        for _ in range(1000):
            slots: Dict[int, int] = {}
            proposal = time
            for node in nodes:
                start, slot = self.earliest_slot(node, duration, time)
                slots[node] = slot
                proposal = max(proposal, start)
            if proposal == time:
                return time, slots
            time = proposal
        raise RuntimeError("resource search did not converge")  # pragma: no cover

    def _earliest_on_slot(self, node: int, slot: int, duration: float,
                          not_before: float) -> float:
        intervals = self._busy[node][slot]
        start = not_before
        for (s, e) in intervals:
            if start + duration <= s:
                return start
            if e > start:
                start = e
        return start

    # ------------------------------------------------------------------ booking

    def reserve(self, node: int, start: float, end: float,
                slot: Optional[int] = None, label: str = "") -> Reservation:
        """Book ``[start, end)`` on a communication qubit of ``node``.

        When ``slot`` is omitted the first free slot is used.  Raises
        ``ValueError`` if no slot is free for the whole interval.
        """
        if end < start:
            raise ValueError("reservation end precedes start")
        if slot is None:
            for candidate in range(len(self._busy[node])):
                if self.slot_free(node, candidate, start, end):
                    slot = candidate
                    break
            else:
                raise ValueError(
                    f"node {node} has no free communication qubit in "
                    f"[{start}, {end})")
        elif not self.slot_free(node, slot, start, end):
            raise ValueError(
                f"slot {slot} of node {node} is busy in [{start}, {end})")
        insort(self._busy[node][slot], (start, end))
        reservation = Reservation(node=node, slot=slot, start=start, end=end,
                                  label=label)
        self.reservations.append(reservation)
        return reservation

    # ---------------------------------------------------------------- reporting

    def utilisation(self, node: int, horizon: Optional[float] = None) -> float:
        """Fraction of busy time across the node's communication qubits."""
        if horizon is None:
            horizon = self.makespan()
        if horizon <= 0:
            return 0.0
        busy = sum(e - s for slot in self._busy[node] for (s, e) in slot)
        return busy / (horizon * len(self._busy[node]))

    def makespan(self) -> float:
        """Latest reservation end time across the whole network."""
        ends = [e for node in self._busy.values() for slot in node for (_, e) in slot]
        return max(ends, default=0.0)

    def num_reservations(self) -> int:
        return len(self.reservations)
