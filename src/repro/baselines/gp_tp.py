"""GP-TP baseline: graph-partition compiler with TP-Comm remote swaps.

This models the comparison target of Section 5.3 (Baker et al.'s
time-sliced, graph-partition-based compiler, upgraded to use TP-Comm for
qubit movement as the paper does).  Remote interactions are made local by
*moving* qubits between nodes: whenever a two-qubit gate spans two nodes,
one of its qubits is exchanged with a qubit on the other node via a remote
SWAP, which costs two communications under TP-Comm.  The choice of which
qubit to move, and which resident qubit to displace, uses a short
look-ahead over upcoming gates, mirroring the time-slice locality the
original compiler derives from graph partitioning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..comm.blocks import CommBlock, CommScheme
from ..comm.cost import total_comm_count
from ..core.aggregation import AggregationResult, ScheduleItem
from ..core.assignment import AssignmentResult
from ..core.metrics import CompilationMetrics
from ..core.pipeline import CompiledProgram
from ..core.scheduling import schedule_communications
from ..hardware.network import QuantumNetwork
from ..ir.circuit import Circuit
from ..ir.decompose import decompose_to_cx
from ..ir.gates import Gate
from ..partition.mapping import QubitMapping
from ..partition.oee import oee_partition

__all__ = ["GPTPCompiler", "compile_gp_tp"]


class GPTPCompiler:
    """Qubit-movement compiler using TP-Comm remote swaps."""

    name = "gp-tp"

    def __init__(self, lookahead: int = 20) -> None:
        self.lookahead = lookahead

    # ------------------------------------------------------------------ public

    def compile(self, circuit: Circuit, network: QuantumNetwork,
                mapping: Optional[QubitMapping] = None,
                decompose: bool = True) -> CompiledProgram:
        network.validate_capacity(circuit.num_qubits)
        working = decompose_to_cx(circuit) if decompose else circuit
        if mapping is None:
            mapping = oee_partition(working, network).mapping

        location: Dict[int, int] = mapping.as_dict()
        gates = list(working.gates)

        items: List[ScheduleItem] = []
        blocks: List[CommBlock] = []
        num_swaps = 0

        for index, gate in enumerate(gates):
            if gate.is_two_qubit:
                qubit_a, qubit_b = gate.qubits
                if location[qubit_a] != location[qubit_b]:
                    moved, displaced = self._plan_move(gates, index, location,
                                                       qubit_a, qubit_b)
                    block = self._swap_block(moved, displaced, location)
                    location[moved], location[displaced] = (
                        location[displaced], location[moved])
                    blocks.append(block)
                    items.append(block)
                    num_swaps += 1
            items.append(gate)

        aggregation = AggregationResult(working, mapping, items, blocks)
        cost = total_comm_count(blocks, mapping, network=network)
        assignment = AssignmentResult(aggregation=aggregation, blocks=blocks,
                                      cost=cost)
        schedule = schedule_communications(assignment, network, strategy="greedy")

        peak = 1.5 if num_swaps else 0.0  # 3 CX worth of state motion per 2 comms
        metrics = CompilationMetrics(
            name=circuit.name,
            total_comm=2 * num_swaps,
            tp_comm=2 * num_swaps,
            cat_comm=0,
            peak_rem_cx=peak,
            latency=schedule.latency,
            num_blocks=len(blocks),
            num_remote_gates=mapping.count_remote_gates(working),
            total_epr_pairs=cost.total_epr_pairs,
            total_epr_latency=cost.total_epr_latency,
        )
        return CompiledProgram(
            name=circuit.name,
            compiler=self.name,
            circuit=working,
            mapping=mapping,
            network=network,
            blocks=blocks,
            metrics=metrics,
            aggregation=aggregation,
            assignment=assignment,
            schedule=schedule,
        )

    # --------------------------------------------------------------- movement

    def _plan_move(self, gates: List[Gate], index: int, location: Dict[int, int],
                   qubit_a: int, qubit_b: int) -> Tuple[int, int]:
        """Decide which qubit to move and which resident qubit it displaces."""
        affinity_a = self._affinity(gates, index, location, qubit_a)
        affinity_b = self._affinity(gates, index, location, qubit_b)
        # Move the qubit that is *less* attached to its current node; break
        # ties by moving the first operand.
        if affinity_b < affinity_a:
            moved, destination_anchor = qubit_b, qubit_a
        else:
            moved, destination_anchor = qubit_a, qubit_b
        target_node = location[destination_anchor]
        displaced = self._pick_displaced(gates, index, location, target_node,
                                         keep=destination_anchor)
        return moved, displaced

    def _affinity(self, gates: List[Gate], index: int, location: Dict[int, int],
                  qubit: int) -> int:
        """Upcoming interactions of ``qubit`` with qubits on its current node."""
        node = location[qubit]
        count = 0
        seen = 0
        for gate in gates[index + 1:]:
            if not gate.is_two_qubit:
                continue
            seen += 1
            if seen > self.lookahead:
                break
            if qubit in gate.qubits:
                other = gate.qubits[0] if gate.qubits[1] == qubit else gate.qubits[1]
                if location[other] == node:
                    count += 1
        return count

    def _pick_displaced(self, gates: List[Gate], index: int,
                        location: Dict[int, int], target_node: int,
                        keep: int) -> int:
        """Choose the resident of ``target_node`` that the moved qubit replaces."""
        residents = [q for q, n in location.items()
                     if n == target_node and q != keep]
        if not residents:
            raise ValueError(f"node {target_node} has no displaceable qubit")
        best = residents[0]
        best_affinity = None
        for qubit in residents:
            affinity = self._affinity(gates, index, location, qubit)
            if best_affinity is None or affinity < best_affinity:
                best, best_affinity = qubit, affinity
        return best

    def _swap_block(self, moved: int, displaced: int,
                    location: Dict[int, int]) -> CommBlock:
        """Represent one remote SWAP (3 CX of state motion, 2 TP communications)."""
        block = CommBlock(hub_qubit=moved,
                          hub_node=location[moved],
                          remote_node=location[displaced])
        block.extend([
            Gate("cx", (moved, displaced)),
            Gate("cx", (displaced, moved)),
            Gate("cx", (moved, displaced)),
        ])
        block.scheme = CommScheme.TP
        return block


def compile_gp_tp(circuit: Circuit, network: QuantumNetwork,
                  mapping: Optional[QubitMapping] = None,
                  lookahead: int = 20) -> CompiledProgram:
    """Compile with the GP-TP qubit-movement baseline."""
    return GPTPCompiler(lookahead=lookahead).compile(circuit, network, mapping)
