"""Sparse-communication baseline (Ferrari et al., the paper's main baseline).

Every remote CX gate is executed through its own Cat-Comm invocation (one
EPR pair per remote CX), and the program is scheduled with the plain greedy
as-soon-as-possible strategy.  No burst communication is exploited — this is
the "existing flow" of Figure 1 that AutoComm is measured against.
"""

from __future__ import annotations

from typing import List, Optional

from ..comm.blocks import CommBlock, CommScheme
from ..comm.cost import total_comm_count
from ..core.aggregation import AggregationResult, ScheduleItem
from ..core.assignment import AssignmentResult
from ..core.metrics import CompilationMetrics
from ..core.pipeline import CompiledProgram
from ..core.scheduling import schedule_communications
from ..hardware.network import QuantumNetwork
from ..ir.circuit import Circuit
from ..ir.decompose import decompose_to_cx
from ..partition.mapping import QubitMapping
from ..partition.oee import oee_partition

__all__ = ["SparseCompiler", "compile_sparse"]


class SparseCompiler:
    """Per-gate Cat-Comm compiler with ASAP scheduling."""

    name = "sparse-cat"

    def compile(self, circuit: Circuit, network: QuantumNetwork,
                mapping: Optional[QubitMapping] = None,
                decompose: bool = True) -> CompiledProgram:
        network.validate_capacity(circuit.num_qubits)
        working = decompose_to_cx(circuit) if decompose else circuit
        if mapping is None:
            mapping = oee_partition(working, network).mapping

        items: List[ScheduleItem] = []
        blocks: List[CommBlock] = []
        for gate in working:
            if gate.is_two_qubit and mapping.is_remote(gate):
                a, b = gate.qubits
                block = CommBlock(hub_qubit=a, hub_node=mapping.node_of(a),
                                  remote_node=mapping.node_of(b))
                block.append(gate)
                block.scheme = CommScheme.CAT
                blocks.append(block)
                items.append(block)
            else:
                items.append(gate)

        aggregation = AggregationResult(working, mapping, items, blocks)
        cost = total_comm_count(blocks, mapping, network=network)
        assignment = AssignmentResult(aggregation=aggregation, blocks=blocks,
                                      cost=cost)
        schedule = schedule_communications(assignment, network, strategy="greedy")

        metrics = CompilationMetrics(
            name=circuit.name,
            total_comm=cost.total_comm,
            tp_comm=cost.tp_comm,
            cat_comm=cost.cat_comm,
            peak_rem_cx=cost.peak_remote_cx,
            latency=schedule.latency,
            num_blocks=len(blocks),
            num_remote_gates=mapping.count_remote_gates(working),
            total_epr_pairs=cost.total_epr_pairs,
            total_epr_latency=cost.total_epr_latency,
        )
        return CompiledProgram(
            name=circuit.name,
            compiler=self.name,
            circuit=working,
            mapping=mapping,
            network=network,
            blocks=blocks,
            metrics=metrics,
            aggregation=aggregation,
            assignment=assignment,
            schedule=schedule,
        )


def compile_sparse(circuit: Circuit, network: QuantumNetwork,
                   mapping: Optional[QubitMapping] = None) -> CompiledProgram:
    """Compile with the sparse per-gate Cat-Comm baseline."""
    return SparseCompiler().compile(circuit, network, mapping)
