"""Baseline and ablation compilers used in the paper's evaluation.

* :func:`compile_sparse` — Ferrari-style per-gate Cat-Comm (main baseline,
  Table 3).
* :func:`compile_gp_tp` — graph-partition / qubit-movement compiler with
  TP-Comm swaps (Figure 16).
* :func:`compile_cat_only` — AutoComm with the hybrid assignment disabled
  (Figure 17b ablation, Diadamo-style controlled-unitary compiler).
* :func:`compile_no_commute` — AutoComm with commutation-free aggregation
  (Figure 17a ablation).
* :func:`compile_plain_schedule` — AutoComm with the plain greedy schedule
  (Figure 17c ablation).
"""

from __future__ import annotations

from typing import Optional

from ..core.pipeline import AutoCommCompiler, AutoCommConfig, CompiledProgram
from ..hardware.network import QuantumNetwork
from ..ir.circuit import Circuit
from ..partition.mapping import QubitMapping
from .sparse import SparseCompiler, compile_sparse
from .gp_tp import GPTPCompiler, compile_gp_tp

__all__ = [
    "SparseCompiler",
    "compile_sparse",
    "GPTPCompiler",
    "compile_gp_tp",
    "compile_cat_only",
    "compile_no_commute",
    "compile_plain_schedule",
]


def compile_cat_only(circuit: Circuit, network: QuantumNetwork,
                     mapping: Optional[QubitMapping] = None) -> CompiledProgram:
    """AutoComm restricted to Cat-Comm assignments (Figure 17b ablation)."""
    config = AutoCommConfig(cat_only=True)
    return AutoCommCompiler(config).compile(circuit, network, mapping)


def compile_no_commute(circuit: Circuit, network: QuantumNetwork,
                       mapping: Optional[QubitMapping] = None) -> CompiledProgram:
    """AutoComm with commutation disabled in aggregation (Figure 17a ablation)."""
    config = AutoCommConfig(use_commutation=False)
    return AutoCommCompiler(config).compile(circuit, network, mapping)


def compile_plain_schedule(circuit: Circuit, network: QuantumNetwork,
                           mapping: Optional[QubitMapping] = None) -> CompiledProgram:
    """AutoComm with the plain ASAP greedy schedule (Figure 17c ablation)."""
    config = AutoCommConfig(schedule_strategy="greedy")
    return AutoCommCompiler(config).compile(circuit, network, mapping)
