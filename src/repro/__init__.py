"""AutoComm reproduction: burst-communication compilation for distributed quantum programs.

The package is organised in layers:

* :mod:`repro.ir` — circuit IR, decomposition, commutation, simulator;
* :mod:`repro.hardware` — nodes, networks, latency model, comm-qubit tracking;
* :mod:`repro.partition` — static qubit-to-node mapping (OEE);
* :mod:`repro.comm` — burst blocks and the Cat-Comm / TP-Comm protocols;
* :mod:`repro.core` — the AutoComm passes (aggregation, assignment,
  scheduling) and the compilation pipeline;
* :mod:`repro.baselines` — the compilers AutoComm is compared against;
* :mod:`repro.circuits` — benchmark circuit generators (Table 2 suite);
* :mod:`repro.analysis` — burst statistics and result-table builders;
* :mod:`repro.sim` — discrete-event execution simulation of compiled
  programs (stochastic EPR generation, link contention, Monte-Carlo latency
  distributions, analytical-schedule validation).

Quick start::

    from repro import compile_autocomm, compile_sparse
    from repro.circuits import qft_circuit
    from repro.hardware import uniform_network

    circuit = qft_circuit(20)
    network = uniform_network(num_nodes=4, qubits_per_node=5)
    autocomm = compile_autocomm(circuit, network)
    baseline = compile_sparse(circuit, network)
    print(autocomm.metrics.total_comm, baseline.metrics.total_comm)
"""

from .core import (
    AutoCommCompiler,
    AutoCommConfig,
    CompiledProgram,
    compile_autocomm,
    comparison_factors,
)
from .baselines import compile_sparse, compile_gp_tp
from .hardware import uniform_network, QuantumNetwork, LatencyModel, DEFAULT_LATENCY
from .partition import QubitMapping, oee_partition
from .ir import Circuit, Gate
from .sim import (
    SimulationConfig,
    run_monte_carlo,
    simulate_program,
    validate_schedule,
)

__version__ = "1.0.0"

__all__ = [
    "AutoCommCompiler",
    "AutoCommConfig",
    "CompiledProgram",
    "compile_autocomm",
    "comparison_factors",
    "compile_sparse",
    "compile_gp_tp",
    "uniform_network",
    "QuantumNetwork",
    "LatencyModel",
    "DEFAULT_LATENCY",
    "QubitMapping",
    "oee_partition",
    "Circuit",
    "Gate",
    "SimulationConfig",
    "simulate_program",
    "run_monte_carlo",
    "validate_schedule",
    "__version__",
]
