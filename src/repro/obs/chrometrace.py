"""Chrome-trace-format export of compile spans and simulator traces.

Produces the JSON object format consumed by ``chrome://tracing`` and
Perfetto (https://ui.perfetto.dev): a list of *complete* (``"ph": "X"``)
events, each carrying ``name``/``cat``/``ts``/``dur``/``pid``/``tid`` with
times in microseconds.  Three processes are emitted:

* ``pid`` :data:`PID_COMPILE` — the compile span tree, one thread, spans
  nested exactly as the tracer recorded them;
* ``pid`` :data:`PID_SIM` — the simulated operations (gates elided, they
  would swamp the view), each op one event from EPR-prep start to protocol
  end, greedily packed into non-overlapping lanes;
* ``pid`` :data:`PID_LINKS` — per-link EPR generation windows from the
  trace recorder, one lane group per physical link.

Only ``X`` events are emitted (no metadata records), so every event in the
file has ``ts``/``dur``/``pid``/``tid`` — the invariant
:func:`validate_trace_events` checks, along with proper nesting within each
``(pid, tid)`` lane.  Lane identities are encoded in event ``args`` (node
sets, link endpoints) rather than thread-name metadata.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .span import Span

__all__ = ["PID_COMPILE", "PID_SIM", "PID_LINKS", "span_trace_events",
           "simulation_trace_events", "chrome_trace", "write_chrome_trace",
           "validate_trace_events"]

PID_COMPILE = 1
PID_SIM = 2
PID_LINKS = 3

#: Times below one count of the simulator's unit still need distinct ticks;
#: everything is scaled to integer-friendly microseconds.
_US = 1e6


def span_trace_events(span: Span, pid: int = PID_COMPILE, tid: int = 0,
                      origin: Optional[float] = None) -> List[Dict[str, object]]:
    """Flatten a span tree into complete events (microsecond timestamps).

    ``origin`` defaults to the root span's start so the trace begins at
    ``ts = 0``.  Children are guaranteed to nest inside their parent by the
    tracer's stack discipline; a child stamped a hair outside its parent by
    clock granularity is clamped.
    """
    if origin is None:
        origin = span.start
    events: List[Dict[str, object]] = []

    def emit(node: Span, lo: float, hi: float) -> None:
        start = min(max(node.start, lo), hi)
        end = node.end if node.end is not None else node.start
        end = min(max(end, start), hi)
        event: Dict[str, object] = {
            "name": node.name,
            "cat": "compile",
            "ph": "X",
            "ts": (start - origin) * _US,
            "dur": (end - start) * _US,
            "pid": pid,
            "tid": tid,
        }
        if node.counters:
            event["args"] = {k: node.counters[k]
                             for k in sorted(node.counters)}
        events.append(event)
        for child in node.children:
            emit(child, start, end)

    emit(span, span.start, span.end if span.end is not None else span.start)
    return events


def _assign_lanes(intervals: Sequence[Tuple[float, float]]) -> List[int]:
    """Greedy interval-graph colouring: lane index per interval.

    Intervals assigned the same lane never overlap, so each lane is a valid
    Chrome-trace thread.  Input order is preserved in the result.
    """
    order = sorted(range(len(intervals)),
                   key=lambda i: (intervals[i][0], intervals[i][1]))
    lane_ends: List[float] = []
    lanes = [0] * len(intervals)
    for index in order:
        start, end = intervals[index]
        for lane, busy_until in enumerate(lane_ends):
            if busy_until <= start:
                lane_ends[lane] = end
                lanes[index] = lane
                break
        else:
            lanes[index] = len(lane_ends)
            lane_ends.append(end)
    return lanes


def simulation_trace_events(result, time_unit: float = 1.0,
                            include_links: bool = True
                            ) -> List[Dict[str, object]]:
    """Complete events for one :class:`~repro.sim.engine.SimulationResult`.

    Each communication op becomes one event spanning EPR preparation plus
    protocol (``prep_start`` .. ``end``); per-link EPR generation windows
    from the trace recorder are exported under their own process.  Ops are
    packed into lanes so events on one ``tid`` never overlap — concurrent
    communications land on different lanes.  ``time_unit`` scales simulator
    time units (CX-gate latencies) to microseconds of trace time.
    """
    events: List[Dict[str, object]] = []
    comm_ops = [op for op in result.ops if op.kind != "gate"]
    lanes = _assign_lanes([(op.prep_start, op.end) for op in comm_ops])
    for op, lane in zip(comm_ops, lanes):
        events.append({
            "name": f"{op.kind}#{op.index}",
            "cat": "sim",
            "ph": "X",
            "ts": op.prep_start * time_unit * _US,
            "dur": (op.end - op.prep_start) * time_unit * _US,
            "pid": PID_SIM,
            "tid": lane,
            "args": {
                "nodes": list(op.nodes),
                "epr_attempts": op.epr_attempts,
                "epr_pairs": op.epr_pairs,
                "protocol_start": op.start * time_unit * _US,
            },
        })
    if include_links and result.trace is not None:
        link_items = sorted(result.trace.link_busy.items())
        for tid, (link, windows) in enumerate(link_items):
            # One lane per link: overlapping generation windows on one link
            # (capacity > 1) are merged into their envelope per overlap
            # group so the lane stays a valid, non-overlapping thread.
            for start, end, count in _merge_windows(windows):
                events.append({
                    "name": f"epr {link[0]}-{link[1]}",
                    "cat": "link",
                    "ph": "X",
                    "ts": start * time_unit * _US,
                    "dur": (end - start) * time_unit * _US,
                    "pid": PID_LINKS,
                    "tid": tid,
                    "args": {"link": list(link), "generations": count},
                })
    return events


def _merge_windows(windows: Iterable[Tuple[float, float]]
                   ) -> List[Tuple[float, float, int]]:
    """Merge overlapping (start, end) windows into (start, end, count)."""
    merged: List[Tuple[float, float, int]] = []
    for start, end in sorted(windows):
        if merged and start < merged[-1][1]:
            last_start, last_end, count = merged[-1]
            merged[-1] = (last_start, max(last_end, end), count + 1)
        else:
            merged.append((start, end, 1))
    return merged


def chrome_trace(events: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Wrap events in the Chrome trace JSON object format."""
    return {"traceEvents": list(events), "displayTimeUnit": "ms"}


def write_chrome_trace(path, events: Sequence[Dict[str, object]]) -> Path:
    """Write events as a ``.trace.json`` loadable by chrome://tracing."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(events), indent=1,
                               sort_keys=True) + "\n")
    return path


def validate_trace_events(events: Sequence[Dict[str, object]],
                          tolerance: float = 1e-6) -> List[str]:
    """Schema-check trace events; returns a list of violations (empty = OK).

    Checks the acceptance invariants: every event is a complete (``X``)
    event carrying numeric ``ts``/``dur``/``pid``/``tid`` with ``ts >= 0``
    and ``dur >= 0``, and within each ``(pid, tid)`` lane events either
    nest or are disjoint — no partial overlaps.
    """
    problems: List[str] = []
    lanes: Dict[Tuple[object, object], List[Tuple[float, float, str]]] = {}
    for position, event in enumerate(events):
        label = f"event {position} ({event.get('name', '?')!r})"
        if event.get("ph") != "X":
            problems.append(f"{label}: ph is {event.get('ph')!r}, expected 'X'")
            continue
        missing = [key for key in ("ts", "dur", "pid", "tid")
                   if key not in event]
        if missing:
            problems.append(f"{label}: missing {', '.join(missing)}")
            continue
        ts, dur = event["ts"], event["dur"]
        if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)):
            problems.append(f"{label}: non-numeric ts/dur")
            continue
        if ts < -tolerance:
            problems.append(f"{label}: negative ts {ts}")
        if dur < -tolerance:
            problems.append(f"{label}: negative dur {dur}")
        lanes.setdefault((event["pid"], event["tid"]), []).append(
            (float(ts), float(ts) + float(dur), str(event.get("name", "?"))))

    for (pid, tid), spans in lanes.items():
        spans.sort(key=lambda s: (s[0], -(s[1] - s[0])))
        stack: List[Tuple[float, str]] = []  # (end, name) of open ancestors
        for start, end, name in spans:
            while stack and stack[-1][0] <= start + tolerance:
                stack.pop()
            if stack and end > stack[-1][0] + tolerance:
                problems.append(
                    f"lane pid={pid} tid={tid}: {name!r} "
                    f"[{start:.3f}, {end:.3f}] partially overlaps "
                    f"{stack[-1][1]!r} ending at {stack[-1][0]:.3f}")
            stack.append((end, name))
    return problems
