"""Simulator metrics registry: counters, gauges and histograms.

The discrete-event engine records *what the machine did* — per-link EPR
generations and queue waits, retry counts, comm-qubit occupancy, migration
stalls — into a :class:`MetricsRegistry`.  One registry can be shared
across the trials of a Monte-Carlo run (every trial engine writes into the
same instruments) so the aggregate answers questions like "which link was
the contention bottleneck over 200 trials?" without keeping 200 traces.

Like the span layer, metrics only observe: they consume no randomness and
feed nothing back into execution, so enabling or disabling them leaves
simulated latencies and Monte-Carlo streams bit-identical
(``tests/sim/test_trace_disabled.py`` asserts this together with the trace
recorder's disabled mode).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Internal metric key: (name, sorted (label, value) pairs).
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


class Counter:
    """Monotonically accumulating count (EPR attempts, generations, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, value: float = 1) -> None:
        self.value += value

    def as_value(self) -> float:
        return self.value


class Gauge:
    """Last-written value (plan size, analytical latency, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def as_value(self) -> Optional[float]:
        return self.value


class Histogram:
    """Distribution of observed samples (queue waits, occupancies, ...).

    Raw samples are kept (simulation runs observe at most a few samples per
    scheduled op per trial), so percentiles are exact and two histograms
    merge losslessly when Monte-Carlo metrics are aggregated.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Linearly interpolated percentile, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        position = (len(ordered) - 1) * q / 100.0
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction

    def summary(self) -> Dict[str, float]:
        if not self.values:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "p50": 0.0, "p95": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": min(self.values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": max(self.values),
        }


class _NullInstrument:
    """Shared no-op served by a disabled registry."""

    __slots__ = ()
    value = 0

    def inc(self, value: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named, labelled counters/gauges/histograms for one run (or many).

    Instruments are addressed by name plus keyword labels::

        registry.counter("link.epr_generations", link="0-1").inc(2)
        registry.histogram("comm.queue_wait", kind="tp").observe(3.5)

    A disabled registry serves shared no-op instruments, so call sites can
    stay unconditional.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[_Key, Counter] = {}
        self._gauges: Dict[_Key, Gauge] = {}
        self._histograms: Dict[_Key, Histogram] = {}
        #: Free-form instrument-handle cache for hot callers: lookups build
        #: sorted label keys, so code on a per-trial path resolves each
        #: instrument once and parks the handle here under its own key
        #: (shared-registry Monte-Carlo trials then reuse the handles).
        self.handles: Dict[object, object] = {}

    # ------------------------------------------------------------- accessors

    @staticmethod
    def _key(name: str, labels: Dict[str, object]) -> _Key:
        if not labels:
            return (name, ())
        return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))

    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = self._key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = self._key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels) -> Histogram:
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = self._key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # -------------------------------------------------------------- queries

    @staticmethod
    def _format_key(key: _Key) -> str:
        name, labels = key
        if not labels:
            return name
        inner = ",".join(f"{k}={v}" for k, v in labels)
        return f"{name}{{{inner}}}"

    def counter_values(self) -> Dict[str, float]:
        return {self._format_key(k): c.value
                for k, c in sorted(self._counters.items())}

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot: counters/gauges as values, histogram summaries."""
        return {
            "counters": {self._format_key(k): c.value
                         for k, c in sorted(self._counters.items())},
            "gauges": {self._format_key(k): g.value
                       for k, g in sorted(self._gauges.items())},
            "histograms": {self._format_key(k): h.summary()
                           for k, h in sorted(self._histograms.items())},
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters add, gauges
        overwrite, histograms pool their samples)."""
        for key, counter in other._counters.items():
            mine = self._counters.get(key)
            if mine is None:
                mine = self._counters[key] = Counter()
            mine.inc(counter.value)
        for key, gauge in other._gauges.items():
            if gauge.value is not None:
                mine = self._gauges.get(key)
                if mine is None:
                    mine = self._gauges[key] = Gauge()
                mine.set(gauge.value)
        for key, histogram in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = Histogram()
            mine.values.extend(histogram.values)

    def top_counters(self, prefix: str, n: int = 5) -> List[Tuple[str, float]]:
        """The ``n`` largest counters whose name starts with ``prefix``."""
        matches = [(self._format_key(k), c.value)
                   for k, c in self._counters.items()
                   if k[0].startswith(prefix)]
        matches.sort(key=lambda kv: (-kv[1], kv[0]))
        return matches[:n]

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))
