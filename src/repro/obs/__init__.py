"""Structured observability: spans, metrics and exportable run reports.

Zero-dependency instrumentation substrate for the compiler and simulator:

* :mod:`repro.obs.span` — context-manager stage spans with counters; the
  compile pipeline threads these through every pass, and each
  :class:`~repro.core.pipeline.CompiledProgram` carries the resulting tree;
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry the
  discrete-event engine fills with per-link contention, EPR retry and
  occupancy data, aggregated across Monte-Carlo trials;
* :mod:`repro.obs.report` — the versioned :class:`RunReport` JSON artifact
  (``--report`` on the CLI);
* :mod:`repro.obs.chrometrace` — Chrome-trace-format (``chrome://tracing``
  / Perfetto) export of compile spans and simulator event traces
  (``repro.cli trace``).

Instrumentation is default-on and observational only: compile output,
simulated latencies and Monte-Carlo streams are byte-identical with it on
or off (guarded by ``tests/integration/test_obs_equivalence.py`` and the
``bench_obs_overhead`` benchmark's <5% overhead bar).
"""

from .chrometrace import (PID_COMPILE, PID_LINKS, PID_SIM, chrome_trace,
                          simulation_trace_events, span_trace_events,
                          validate_trace_events, write_chrome_trace)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import RUN_REPORT_SCHEMA, RunReport, report_for_program
from .span import (NULL_SPAN, NullSpan, Span, Tracer, current_span,
                   set_tracing, stage, tracing_enabled)

__all__ = [
    "Span", "NullSpan", "NULL_SPAN", "Tracer", "stage", "current_span",
    "set_tracing", "tracing_enabled",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "RUN_REPORT_SCHEMA", "RunReport", "report_for_program",
    "PID_COMPILE", "PID_SIM", "PID_LINKS", "span_trace_events",
    "simulation_trace_events", "chrome_trace", "write_chrome_trace",
    "validate_trace_events",
]
