"""Stage-timed compile spans.

A :class:`Span` is one timed stage of a run — a compile pass, an OEE
round, one phase of a phase-structured compile — with wall-clock start/end
times, named numeric counters and nested children.  A :class:`Tracer`
activates a root span; while it is active, :func:`stage` opens a child of
the innermost open span and :func:`current_span` returns that span so any
pass can attach counters without its signature changing.

The design goal is *default-on, provably free-ish* instrumentation:

* when no tracer is active (or tracing is globally disabled through
  :func:`set_tracing`), :func:`stage` yields the shared :data:`NULL_SPAN`
  whose mutators are no-ops — the cost of an instrumented pass is then one
  small object allocation and two method calls;
* spans only *observe*: nothing downstream reads them, so compile output is
  byte-identical with tracing on or off (asserted by
  ``tests/integration/test_obs_equivalence.py``).

The active-span stack is a plain module global: the compiler is
single-threaded per process (the eventual service layer runs one compile
per worker), so no thread-local indirection is paid on the hot path.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "NullSpan", "NULL_SPAN", "Tracer", "stage",
           "current_span", "set_tracing", "tracing_enabled"]

#: Global switch consulted by :class:`Tracer` activation (``stage`` itself
#: only checks the active stack, so flipping this mid-trace is safe: open
#: tracers finish, new ones become no-ops).
_ENABLED = True

#: Stack of open spans; ``_STACK[-1]`` is the innermost.
_STACK: List["Span"] = []


def set_tracing(enabled: bool) -> bool:
    """Enable/disable span collection globally; returns the previous state.

    Used by the overhead benchmark to A/B the instrumented pipeline against
    the untraced one, and available to large sweeps that want the last few
    tenths of a percent back.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def tracing_enabled() -> bool:
    return _ENABLED


class Span:
    """One timed stage with counters and nested children."""

    __slots__ = ("name", "start", "end", "counters", "children")

    enabled = True

    def __init__(self, name: str, start: Optional[float] = None) -> None:
        self.name = name
        self.start = time.perf_counter() if start is None else start
        self.end: Optional[float] = None
        self.counters: Dict[str, float] = {}
        self.children: List[Span] = []

    # ------------------------------------------------------------- mutation

    def child(self, name: str) -> "Span":
        span = Span(name)
        self.children.append(span)
        return span

    def close(self, end: Optional[float] = None) -> None:
        if self.end is None:
            self.end = time.perf_counter() if end is None else end

    def add(self, counter: str, value: float = 1) -> None:
        """Accumulate ``value`` onto a named counter."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def set(self, counter: str, value: float) -> None:
        """Overwrite a named counter (for point-in-time quantities)."""
        self.counters[counter] = value

    # -------------------------------------------------------------- queries

    @property
    def duration(self) -> float:
        """Wall time of the stage (up to now while still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in preorder, or ``None``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    # ---------------------------------------------------------- conversion

    def as_dict(self, origin: Optional[float] = None) -> Dict[str, object]:
        """JSON-ready tree with times relative to ``origin`` (default: self).

        ``start`` and ``duration`` are seconds; the root starts at 0.0, so
        the dict round-trips through :meth:`from_dict` exactly.
        """
        if origin is None:
            origin = self.start
        return {
            "name": self.name,
            "start": self.start - origin,
            "duration": self.duration,
            "counters": dict(self.counters),
            "children": [child.as_dict(origin) for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        """Rebuild a span tree from :meth:`as_dict` output (relative times)."""
        span = cls(str(data["name"]), start=float(data["start"]))
        span.end = span.start + float(data["duration"])
        span.counters = {str(k): v for k, v in data.get("counters", {}).items()}
        span.children = [cls.from_dict(child)
                         for child in data.get("children", ())]
        return span

    def render(self, indent: int = 0, unit: float = 1e3,
               unit_label: str = "ms") -> str:
        """Human-readable stage tree (used by ``repro.cli profile``)."""
        counters = " ".join(f"{k}={v:g}" for k, v in sorted(self.counters.items()))
        line = (f"{'  ' * indent}{self.name:<{max(1, 28 - 2 * indent)}} "
                f"{self.duration * unit:9.3f} {unit_label}")
        if counters:
            line += f"  [{counters}]"
        lines = [line]
        lines.extend(child.render(indent + 1, unit=unit, unit_label=unit_label)
                     for child in self.children)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
                f"{len(self.children)} children)")


class NullSpan:
    """Shared no-op span handed out when no tracer is active."""

    __slots__ = ()

    enabled = False
    name = ""
    counters: Dict[str, float] = {}
    children: List[Span] = []

    def child(self, name: str) -> "NullSpan":
        return self

    def close(self, end: Optional[float] = None) -> None:
        pass

    def add(self, counter: str, value: float = 1) -> None:
        pass

    def set(self, counter: str, value: float) -> None:
        pass

    @property
    def duration(self) -> float:
        return 0.0


NULL_SPAN = NullSpan()


class Tracer:
    """Context manager that activates a root span for one run.

    .. code-block:: python

        with Tracer("compile/qft") as tracer:
            ...  # stages opened inside land under tracer.root
        tree = tracer.root  # closed Span, or None when tracing is disabled
    """

    __slots__ = ("name", "root")

    def __init__(self, name: str) -> None:
        self.name = name
        self.root: Optional[Span] = None

    def __enter__(self) -> "Tracer":
        if _ENABLED:
            self.root = Span(self.name)
            _STACK.append(self.root)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.root is not None:
            # Pop back to (and including) our root even if an inner stage
            # leaked open because of an exception mid-stage.
            while _STACK:
                span = _STACK.pop()
                span.close()
                if span is self.root:
                    break
        return False


class _Stage:
    """Context manager opening a child of the innermost open span."""

    __slots__ = ("name", "_span")

    def __init__(self, name: str) -> None:
        self.name = name
        self._span: Optional[Span] = None

    def __enter__(self):
        if not _STACK:
            return NULL_SPAN
        span = _STACK[-1].child(self.name)
        _STACK.append(span)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._span is not None and _STACK and _STACK[-1] is self._span:
            _STACK.pop()
            self._span.close()
        return False


def stage(name: str) -> _Stage:
    """Open a timed child stage of the active span (no-op without a tracer)."""
    return _Stage(name)


def current_span():
    """The innermost open span, or :data:`NULL_SPAN` when none is active."""
    return _STACK[-1] if _STACK else NULL_SPAN
