"""Exportable, versioned run reports.

A :class:`RunReport` is the JSON artifact one CLI invocation leaves behind:
what was run (``meta``), what the compiler produced
(:class:`~repro.core.metrics.CompilationMetrics` as ``metrics``), where the
compile spent its time (the span tree as ``spans``), and — for simulation
runs — the validation outcome, Monte-Carlo summary and the simulator's
metrics-registry snapshot under ``simulation``.  ``compare`` runs carry one
entry per contender under ``programs`` instead.

The format is versioned (:data:`RUN_REPORT_SCHEMA`) and round-trips
exactly: ``RunReport.load(path)`` on a saved report reconstructs an equal
object, which the CI perf-smoke job relies on when it uploads a report
artifact per run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .span import Span

__all__ = ["RUN_REPORT_SCHEMA", "RunReport", "report_for_program"]

#: Bump when the report layout changes incompatibly.
RUN_REPORT_SCHEMA = 1

_KINDS = ("compile", "simulate", "compare", "trace")


@dataclass
class RunReport:
    """One run's exportable record (see module docstring)."""

    kind: str
    meta: Dict[str, object] = field(default_factory=dict)
    #: ``CompilationMetrics.as_dict()`` of the primary program.
    metrics: Optional[Dict[str, object]] = None
    #: ``Span.as_dict()`` stage-timing tree of the primary compile.
    spans: Optional[Dict[str, object]] = None
    #: Simulation section: ``validation``, ``monte_carlo``, ``sim_metrics``.
    simulation: Optional[Dict[str, object]] = None
    #: Per-contender entries of a ``compare`` run.
    programs: Optional[List[Dict[str, object]]] = None
    schema: int = RUN_REPORT_SCHEMA

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown report kind {self.kind!r}; "
                             f"choose from {_KINDS}")

    # ---------------------------------------------------------- conversion

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"schema": self.schema, "kind": self.kind,
                                   "meta": self.meta}
        for key in ("metrics", "spans", "simulation", "programs"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunReport":
        schema = data.get("schema")
        if schema != RUN_REPORT_SCHEMA:
            raise ValueError(
                f"unsupported run-report schema {schema!r} "
                f"(this build reads schema {RUN_REPORT_SCHEMA})")
        return cls(kind=str(data["kind"]), meta=dict(data.get("meta", {})),
                   metrics=data.get("metrics"), spans=data.get("spans"),
                   simulation=data.get("simulation"),
                   programs=data.get("programs"), schema=int(schema))

    @classmethod
    def load(cls, path) -> "RunReport":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ValueError(f"{path}: run report must be a JSON object, "
                             f"got {type(data).__name__}")
        return cls.from_dict(data)

    # ------------------------------------------------------------- queries

    def span_tree(self) -> Optional[Span]:
        """The compile stage-timing tree as a :class:`Span` (or ``None``)."""
        if self.spans is None:
            return None
        return Span.from_dict(self.spans)

    def compilation_metrics(self):
        """Reconstruct the :class:`~repro.core.metrics.CompilationMetrics`."""
        if self.metrics is None:
            return None
        from ..core.metrics import CompilationMetrics
        return CompilationMetrics.from_dict(self.metrics)


def report_for_program(program, kind: str = "compile",
                       meta: Optional[Dict[str, object]] = None) -> RunReport:
    """Build a report from one :class:`~repro.core.pipeline.CompiledProgram`."""
    spans = getattr(program, "spans", None)
    base_meta: Dict[str, object] = {
        "name": program.name,
        "compiler": program.compiler,
        "num_qubits": program.circuit.num_qubits,
        "num_gates": len(program.circuit),
        "num_nodes": program.network.num_nodes,
        "topology": program.network.topology_kind,
        "remap": getattr(program, "remap", "never"),
    }
    if meta:
        base_meta.update(meta)
    return RunReport(kind=kind, meta=base_meta,
                     metrics=program.metrics.as_dict(),
                     spans=spans.as_dict() if spans is not None else None)
