"""Command-line interface.

``python -m repro.cli compile program.qasm --nodes 4`` compiles an OpenQASM
2.0 program for a distributed machine and prints the communication report;
``python -m repro.cli generate qft --qubits 16`` writes a benchmark circuit
as QASM; ``python -m repro.cli compare program.qasm --nodes 4`` runs every
compiler on the same program.

``python -m repro.cli simulate program.qasm --nodes 4`` executes the
compiled program on the modelled hardware with the discrete-event engine of
:mod:`repro.sim`: it first replays the schedule deterministically
(``p_epr = 1.0``) and cross-checks the analytical latency, then — when
``--p-epr`` is below 1 or ``--trials`` exceeds 1 — runs a seeded
Monte-Carlo study of stochastic EPR generation and prints the latency
distribution.  ``--seed`` and ``--trials`` make stochastic runs reproducible
from the command line; ``--retry-latency`` prices failed EPR attempts,
``--link-capacity`` bounds concurrent EPR generations per link, and
``--timeline`` renders the executed schedule as an ASCII per-node timeline.

``--topology`` (with ``--swap-overhead`` and ``--grid-columns``) constrains
the EPR link graph of the machine for ``compile``, ``compare``,
``simulate`` and ``profile``: non-adjacent node pairs route through
entanglement swapping, the whole pipeline compiles topology-aware
(latency-weighted partitioning, per-pair EPR latencies, swap-inclusive
``total_epr_pairs`` accounting) and the simulator books contention on the
physical links of each route.

``--link-spec`` (a JSON file with per-link ``t_epr``/``capacity``/``p_epr``)
or ``--link-profile`` (a named preset such as ``distance_scaled`` or
``noisy_spine``) makes the links heterogeneous: routing detours around slow
fibres, the compiler prices each link it crosses, and the simulator books
each link against its own capacity and samples generation with its own
success probability.  The global ``--link-capacity`` flag is the uniform
special case (every link, same bound) and conflicts with ``--link-spec``.

``--report out.json`` on ``compile``, ``compare`` and ``simulate`` writes a
versioned :class:`~repro.obs.report.RunReport` JSON artifact (compilation
metrics, compile stage timings, simulation summary and the simulator's
metrics registry); ``python -m repro.cli trace program.qasm --nodes 4``
exports a Chrome-trace-format ``.trace.json`` of the compile span tree and
the simulated execution for chrome://tracing or Perfetto, and ``simulate
--trace-out events.jsonl`` dumps the raw simulator event trace as JSON
Lines.

``python -m repro.cli verify program.qasm --nodes 4`` runs the static
verifier of :mod:`repro.verify` over the compiled artifact — dependency-DAG
acyclicity, schedule-item coverage, mapping/migration legality, EPR route
validity and schedule causality/booking feasibility — without executing it;
``--simulate`` additionally sanitizes one deterministic run's op records
and trace, ``--trace FILE`` validates a Chrome-trace JSON export, and
``--json PATH`` writes the diagnostics report as a machine-readable
artifact.  The same checks are available as ``--verify`` on ``compile``,
``compare`` and ``simulate``; error diagnostics make all of them exit
non-zero.

``--remap bursts`` (with ``--phase-blocks``) switches the autocomm pipeline
to phase-structured compilation: the aggregated program is segmented at
burst-phase boundaries, each later phase re-partitions incrementally from
the previous phase's mapping (every qubit move charged its routed teleport
latency), and the resulting migrations are explicit teleports the scheduler
and simulator execute.  ``compare --remap bursts`` adds the remapped
pipeline as an extra contender row; ``compare --fidelity`` appends an
estimated-fidelity column.  ``simulate --ideal-links`` runs the Monte-Carlo
study under the analytical scheduler's idealisation (capacities and
per-link loss ignored, per-link latencies kept).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from .analysis import render_table, simulation_row, simulation_timeline
from .analysis.fidelity import DEFAULT_ERROR_MODEL, estimate_fidelity
from .baselines import (
    compile_cat_only,
    compile_gp_tp,
    compile_no_commute,
    compile_plain_schedule,
    compile_sparse,
)
from .circuits import BENCHMARK_FAMILIES, build_benchmark
from .core import AutoCommConfig, compile_autocomm
from .hardware import (LINK_PROFILES, SUPPORTED_TOPOLOGIES, apply_topology,
                       load_link_spec, uniform_network)
from .ir import Circuit, from_qasm, to_qasm
from .obs import (PID_COMPILE, RunReport, report_for_program,
                  simulation_trace_events, span_trace_events,
                  validate_trace_events, write_chrome_trace)
from .sim import (SimulationConfig, run_monte_carlo, simulate_program,
                  validate_schedule)
from .verify import sanitize_simulation, verify_program

__all__ = ["main", "build_parser"]

COMPILERS: Dict[str, Callable] = {
    "autocomm": compile_autocomm,
    "sparse": compile_sparse,
    "gp-tp": compile_gp_tp,
    "cat-only": compile_cat_only,
    "no-commute": compile_no_commute,
    "plain-schedule": compile_plain_schedule,
}


def _add_topology_arguments(parser: argparse.ArgumentParser) -> None:
    """Network-topology options shared by compile/compare/simulate/profile."""
    parser.add_argument("--topology", choices=SUPPORTED_TOPOLOGIES,
                        default="all-to-all",
                        help="EPR link topology of the network; non-adjacent "
                             "pairs route through entanglement swapping "
                             "(default all-to-all)")
    parser.add_argument("--swap-overhead", type=float, default=1.0,
                        help="extra EPR latency per entanglement-swapping "
                             "hop, as a multiple of the link latency "
                             "(default 1.0)")
    parser.add_argument("--grid-columns", type=int, default=None,
                        help="columns of the grid topology "
                             "(default: near-square)")
    parser.add_argument("--link-spec", type=Path, default=None,
                        metavar="PATH",
                        help="JSON file with per-link EPR parameters "
                             "(t_epr/capacity/p_epr; see the README's "
                             "heterogeneous-links section); routing, "
                             "compilation and simulation price each link "
                             "individually")
    parser.add_argument("--link-profile", choices=sorted(LINK_PROFILES),
                        default=None,
                        help="named heterogeneous link preset derived from "
                             "the topology (mutually exclusive with "
                             "--link-spec)")


def _add_report_argument(parser: argparse.ArgumentParser) -> None:
    """The ``--report`` option shared by compile/compare/simulate."""
    parser.add_argument("--report", type=Path, default=None, metavar="PATH",
                        help="write a versioned JSON run report (metrics, "
                             "compile stage timings, simulation summary) "
                             "to PATH")


def _add_verify_argument(parser: argparse.ArgumentParser) -> None:
    """The ``--verify`` option shared by compile/compare/simulate."""
    parser.add_argument("--verify", action="store_true",
                        help="run the static verifier (repro.verify) over "
                             "every compiled program and fail on error "
                             "diagnostics")


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    """Compile-cache options shared by compile/compare/simulate/profile/verify."""
    parser.add_argument("--cache-dir", type=Path, default=None, metavar="PATH",
                        help="persistent compile-cache directory: store the "
                             "compiled artifact there and serve repeat "
                             "compiles of the same inputs from disk "
                             "(default: the REPRO_CACHE_DIR environment "
                             "variable, or no caching)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the compile cache even when "
                             "REPRO_CACHE_DIR is set")


def _cache_for_args(args):
    """The ``cache`` argument of ``compile_autocomm`` the cache flags select."""
    if getattr(args, "no_cache", False):
        return False
    return getattr(args, "cache_dir", None)


def _add_remap_arguments(parser: argparse.ArgumentParser) -> None:
    """Dynamic-remapping options shared by compile/compare/simulate/profile."""
    parser.add_argument("--remap", choices=("never", "bursts"),
                        default="never",
                        help="dynamic inter-phase remapping for the autocomm "
                             "pipeline: 'bursts' segments the program at "
                             "burst-phase boundaries and re-partitions "
                             "incrementally between phases, charging every "
                             "qubit move its routed teleport latency "
                             "(default never = one static mapping)")
    parser.add_argument("--phase-blocks", type=int, default=8,
                        help="burst blocks per phase under --remap bursts "
                             "(default 8)")
    parser.add_argument("--overlap", action="store_true",
                        help="zero-bubble phase boundaries under --remap "
                             "bursts: migration teleports overlap with "
                             "compute through per-qubit dependencies "
                             "instead of a global barrier (never slower "
                             "than the barrier schedule)")
    parser.add_argument("--phase-sizing", choices=("fixed", "auto"),
                        default="fixed",
                        help="how phase boundaries are placed under --remap "
                             "bursts: 'fixed' cuts every --phase-blocks "
                             "burst blocks, 'auto' searches a slack window "
                             "around that quota for the boundary with the "
                             "cheapest migration bill (default fixed)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AutoComm: burst-communication compilation for distributed "
                    "quantum programs (MICRO 2022 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    compile_parser = subparsers.add_parser(
        "compile", help="compile an OpenQASM 2.0 file for a distributed machine")
    compile_parser.add_argument("qasm", type=Path, help="input .qasm file")
    compile_parser.add_argument("--nodes", type=int, required=True,
                                help="number of quantum nodes")
    compile_parser.add_argument("--qubits-per-node", type=int, default=None,
                                help="data qubits per node (default: fit the program)")
    compile_parser.add_argument("--comm-qubits", type=int, default=2,
                                help="communication qubits per node (default 2)")
    compile_parser.add_argument("--compiler", choices=sorted(COMPILERS),
                                default="autocomm")
    compile_parser.add_argument("--fidelity", action="store_true",
                                help="also print an estimated program fidelity")
    _add_topology_arguments(compile_parser)
    _add_remap_arguments(compile_parser)
    _add_cache_arguments(compile_parser)
    _add_report_argument(compile_parser)
    _add_verify_argument(compile_parser)

    compare_parser = subparsers.add_parser(
        "compare", help="run every compiler on the same program")
    compare_parser.add_argument("qasm", type=Path)
    compare_parser.add_argument("--nodes", type=int, required=True)
    compare_parser.add_argument("--qubits-per-node", type=int, default=None)
    compare_parser.add_argument("--comm-qubits", type=int, default=2)
    compare_parser.add_argument("--fidelity", action="store_true",
                                help="also report an estimated fidelity "
                                     "column per compiler")
    compare_parser.add_argument("--trials", type=int, default=0, metavar="N",
                                help="also run N Monte-Carlo trials per "
                                     "compiler and report the simulated "
                                     "latency distribution (default 0 = "
                                     "analytical only)")
    compare_parser.add_argument("--p-epr", type=float, default=1.0,
                                help="EPR attempt success probability for "
                                     "the Monte-Carlo columns (default 1.0)")
    compare_parser.add_argument("--seed", type=int, default=0,
                                help="master seed for the Monte-Carlo "
                                     "columns (default 0)")
    compare_parser.add_argument("--workers", type=int, default=1,
                                help="worker processes for the Monte-Carlo "
                                     "trials (default 1 = in-process; any "
                                     "value returns identical results)")
    _add_topology_arguments(compare_parser)
    _add_remap_arguments(compare_parser)
    _add_cache_arguments(compare_parser)
    _add_report_argument(compare_parser)
    _add_verify_argument(compare_parser)

    simulate_parser = subparsers.add_parser(
        "simulate", help="execute a compiled program with the discrete-event "
                         "simulator (deterministic check + optional "
                         "Monte-Carlo EPR study)")
    simulate_parser.add_argument("qasm", type=Path)
    simulate_parser.add_argument("--nodes", type=int, required=True)
    simulate_parser.add_argument("--qubits-per-node", type=int, default=None)
    simulate_parser.add_argument("--comm-qubits", type=int, default=2)
    simulate_parser.add_argument("--compiler", choices=sorted(COMPILERS),
                                 default="autocomm")
    simulate_parser.add_argument("--p-epr", type=float, default=1.0,
                                 help="EPR attempt success probability "
                                      "(default 1.0 = deterministic)")
    simulate_parser.add_argument("--retry-latency", type=float, default=None,
                                 help="latency of one failed EPR attempt "
                                      "(default: the link's EPR latency)")
    simulate_parser.add_argument("--trials", type=int, default=1,
                                 help="Monte-Carlo trials (default 1)")
    simulate_parser.add_argument("--seed", type=int, default=0,
                                 help="master seed for stochastic runs "
                                      "(default 0)")
    simulate_parser.add_argument("--workers", type=int, default=1,
                                 help="worker processes for the Monte-Carlo "
                                      "trials (default 1 = in-process); "
                                      "results are identical for any value")
    simulate_parser.add_argument("--link-capacity", type=int, default=None,
                                 help="uniform concurrent EPR generations "
                                      "per link (default: unlimited); "
                                      "equivalent to a link-spec whose "
                                      "default carries this capacity, and "
                                      "mutually exclusive with --link-spec "
                                      "— prefer per-link capacities there")
    simulate_parser.add_argument("--timeline", action="store_true",
                                 help="render the executed schedule as an "
                                      "ASCII per-node timeline")
    simulate_parser.add_argument("--ideal-links", action="store_true",
                                 help="run the Monte-Carlo study with ideal "
                                      "links too: ignore link capacities and "
                                      "per-link success probabilities "
                                      "(per-link latencies are kept), the "
                                      "analytical scheduler's idealisation")
    simulate_parser.add_argument("--trace", type=int, default=None,
                                 metavar="N",
                                 help="print the first N simulation events")
    simulate_parser.add_argument("--trace-out", type=Path, default=None,
                                 metavar="PATH",
                                 help="write the shown run's event trace as "
                                      "JSON Lines (one event object per "
                                      "line) to PATH")
    _add_topology_arguments(simulate_parser)
    _add_remap_arguments(simulate_parser)
    _add_cache_arguments(simulate_parser)
    _add_report_argument(simulate_parser)
    _add_verify_argument(simulate_parser)

    profile_parser = subparsers.add_parser(
        "profile", help="profile the compiler (and optionally the simulator) "
                        "on a program: timed repeats plus cProfile hotspots")
    profile_parser.add_argument("qasm", type=Path)
    profile_parser.add_argument("--nodes", type=int, required=True)
    profile_parser.add_argument("--qubits-per-node", type=int, default=None)
    profile_parser.add_argument("--comm-qubits", type=int, default=2)
    profile_parser.add_argument("--compiler", choices=sorted(COMPILERS),
                                default="autocomm")
    profile_parser.add_argument("--repeat", type=int, default=3,
                                help="timed compile repetitions (default 3; "
                                     "the median is reported)")
    profile_parser.add_argument("--top", type=int, default=15,
                                help="number of cProfile hotspots to print "
                                     "(default 15)")
    profile_parser.add_argument("--simulate-trials", type=int, default=0,
                                metavar="N",
                                help="also profile N Monte-Carlo simulation "
                                     "trials (default 0 = compile only)")
    profile_parser.add_argument("--p-epr", type=float, default=0.5,
                                help="EPR success probability for the "
                                     "simulation trials (default 0.5)")
    profile_parser.add_argument("--seed", type=int, default=0)
    profile_parser.add_argument("--workers", type=int, default=1,
                                help="worker processes for the profiled "
                                     "Monte-Carlo trials (default 1)")
    profile_parser.add_argument("--json", type=Path, default=None,
                                metavar="PATH",
                                help="write machine-readable timings and "
                                     "hotspots to PATH (e.g. "
                                     "BENCH_compiler.json)")
    _add_topology_arguments(profile_parser)
    _add_remap_arguments(profile_parser)
    _add_cache_arguments(profile_parser)

    trace_parser = subparsers.add_parser(
        "trace", help="compile + simulate a program and export a Chrome-"
                      "trace-format .trace.json (chrome://tracing, Perfetto) "
                      "of compile stages, simulated ops and link activity")
    trace_parser.add_argument("qasm", type=Path)
    trace_parser.add_argument("--nodes", type=int, required=True)
    trace_parser.add_argument("--qubits-per-node", type=int, default=None)
    trace_parser.add_argument("--comm-qubits", type=int, default=2)
    trace_parser.add_argument("--compiler", choices=sorted(COMPILERS),
                              default="autocomm")
    trace_parser.add_argument("--out", type=Path, default=None, metavar="PATH",
                              help="output file (default: <qasm stem>"
                                   ".trace.json next to the input)")
    trace_parser.add_argument("--p-epr", type=float, default=1.0,
                              help="EPR attempt success probability for the "
                                   "simulated execution (default 1.0)")
    trace_parser.add_argument("--seed", type=int, default=0,
                              help="seed for a stochastic execution "
                                   "(default 0)")
    trace_parser.add_argument("--no-sim", action="store_true",
                              help="export compile spans only, skip the "
                                   "simulated execution")
    _add_topology_arguments(trace_parser)
    _add_remap_arguments(trace_parser)

    verify_parser = subparsers.add_parser(
        "verify", help="statically verify a compiled program — dependency "
                       "DAG, mapping/migration legality, EPR routes, "
                       "schedule causality and resource booking — without "
                       "executing it; optionally sanitize a simulated run "
                       "or a Chrome-trace file")
    verify_parser.add_argument("qasm", type=Path, nargs="?", default=None,
                               help="input .qasm file to compile and verify")
    verify_parser.add_argument("--nodes", type=int, default=None,
                               help="number of quantum nodes (required with "
                                    "a qasm input)")
    verify_parser.add_argument("--qubits-per-node", type=int, default=None)
    verify_parser.add_argument("--comm-qubits", type=int, default=2)
    verify_parser.add_argument("--compiler", choices=sorted(COMPILERS),
                               default="autocomm")
    verify_parser.add_argument("--simulate", action="store_true",
                               help="also run one deterministic simulation "
                                    "and sanitize its op records and trace "
                                    "(double-booked comm qubits, link "
                                    "windows beyond capacity, causality)")
    verify_parser.add_argument("--trace", type=Path, default=None,
                               metavar="PATH",
                               help="validate a Chrome-trace JSON file "
                                    "(a traceEvents object or a bare event "
                                    "list) instead of, or in addition to, "
                                    "a compiled program")
    verify_parser.add_argument("--json", type=Path, default=None,
                               metavar="PATH",
                               help="write the diagnostics report as JSON "
                                    "to PATH")
    verify_parser.add_argument("--strict", action="store_true",
                               help="treat warning diagnostics as fatal")
    verify_parser.add_argument("--list-checks", action="store_true",
                               help="list the registered check passes and "
                                    "exit")
    _add_topology_arguments(verify_parser)
    _add_remap_arguments(verify_parser)
    _add_cache_arguments(verify_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect, clear or pre-warm the persistent compile "
                      "cache (see --cache-dir / REPRO_CACHE_DIR)")
    cache_subparsers = cache_parser.add_subparsers(dest="cache_command",
                                                   required=True)

    cache_stats_parser = cache_subparsers.add_parser(
        "stats", help="print entry count, disk usage and cumulative "
                      "hit/miss/store/corruption counters")
    cache_stats_parser.add_argument("--cache-dir", type=Path, default=None,
                                    metavar="PATH",
                                    help="cache directory (default: "
                                         "REPRO_CACHE_DIR)")

    cache_clear_parser = cache_subparsers.add_parser(
        "clear", help="delete every cached artifact in the directory")
    cache_clear_parser.add_argument("--cache-dir", type=Path, default=None,
                                    metavar="PATH",
                                    help="cache directory (default: "
                                         "REPRO_CACHE_DIR)")

    cache_warm_parser = cache_subparsers.add_parser(
        "warm", help="pre-compile benchmark circuits into the cache so "
                     "later compiles are served warm")
    cache_warm_parser.add_argument("--cache-dir", type=Path, default=None,
                                   metavar="PATH",
                                   help="cache directory (default: "
                                        "REPRO_CACHE_DIR)")
    cache_warm_parser.add_argument("--families", default=None,
                                   metavar="A,B,...",
                                   help="comma-separated benchmark families "
                                        "to warm (default: all of "
                                        f"{', '.join(sorted(BENCHMARK_FAMILIES))})")
    cache_warm_parser.add_argument("--qubits", type=int, default=12,
                                   help="qubits per benchmark circuit "
                                        "(default 12)")
    cache_warm_parser.add_argument("--nodes", type=int, default=4,
                                   help="number of quantum nodes (default 4)")
    cache_warm_parser.add_argument("--qubits-per-node", type=int, default=None,
                                   help="data qubits per node (default: fit "
                                        "the circuit)")
    cache_warm_parser.add_argument("--comm-qubits", type=int, default=2,
                                   help="communication qubits per node "
                                        "(default 2)")
    _add_topology_arguments(cache_warm_parser)
    _add_remap_arguments(cache_warm_parser)

    generate_parser = subparsers.add_parser(
        "generate", help="write a benchmark circuit as OpenQASM 2.0")
    generate_parser.add_argument("family", choices=sorted(f.lower() for f in BENCHMARK_FAMILIES))
    generate_parser.add_argument("--qubits", type=int, required=True)
    generate_parser.add_argument("--output", type=Path, default=None,
                                 help="output file (default: stdout)")
    return parser


def _load_circuit(path: Path) -> Circuit:
    if not path.exists():
        raise SystemExit(f"error: no such file: {path}")
    return from_qasm(path.read_text())


def _make_network(circuit: Circuit, nodes: int, qubits_per_node: Optional[int],
                  comm_qubits: int, topology: str = "all-to-all",
                  swap_overhead: float = 1.0,
                  grid_columns: Optional[int] = None,
                  link_model=None, link_profile: Optional[str] = None):
    per_node = qubits_per_node or -(-circuit.num_qubits // nodes)
    network = uniform_network(nodes, per_node, comm_qubits_per_node=comm_qubits)
    if (topology != "all-to-all" or swap_overhead != 1.0
            or grid_columns is not None or link_model is not None
            or link_profile is not None):
        apply_topology(network, topology, swap_overhead=swap_overhead,
                       grid_columns=grid_columns, link_model=link_model,
                       link_profile=link_profile)
    return network


def _network_from_args(circuit: Circuit, args):
    topology = getattr(args, "topology", "all-to-all")
    grid_columns = getattr(args, "grid_columns", None)
    if grid_columns is not None and topology != "grid":
        raise SystemExit("error: --grid-columns only applies to "
                         "--topology grid")
    link_spec = getattr(args, "link_spec", None)
    link_profile = getattr(args, "link_profile", None)
    if link_spec is not None and link_profile is not None:
        raise SystemExit("error: --link-spec and --link-profile are "
                         "mutually exclusive")
    if link_spec is not None and getattr(args, "link_capacity", None) is not None:
        raise SystemExit(
            "error: --link-spec and --link-capacity are mutually exclusive; "
            "set per-link (or \"default\") capacities in the link-spec file "
            "instead of the global flag")
    link_model = None
    if link_spec is not None:
        if not link_spec.exists():
            raise SystemExit(f"error: no such link-spec file: {link_spec}")
        from .hardware import DEFAULT_LATENCY
        try:
            link_model = load_link_spec(link_spec, DEFAULT_LATENCY.t_epr)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
    try:
        return _make_network(circuit, args.nodes, args.qubits_per_node,
                             args.comm_qubits, topology=topology,
                             swap_overhead=getattr(args, "swap_overhead", 1.0),
                             grid_columns=grid_columns,
                             link_model=link_model, link_profile=link_profile)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _autocomm_config(args) -> Optional[AutoCommConfig]:
    """The AutoComm pipeline config the remap flags ask for (None = default)."""
    remap = getattr(args, "remap", "never")
    phase_blocks = getattr(args, "phase_blocks", 8)
    overlap = getattr(args, "overlap", False)
    phase_sizing = getattr(args, "phase_sizing", "fixed")
    if phase_blocks < 1:
        raise SystemExit("error: --phase-blocks must be >= 1, "
                         f"got {phase_blocks}")
    if remap == "never":
        if overlap:
            raise SystemExit("error: --overlap requires --remap bursts")
        if phase_sizing != "fixed":
            raise SystemExit("error: --phase-sizing auto requires "
                             "--remap bursts")
        return None
    return AutoCommConfig(remap=remap, phase_blocks=phase_blocks,
                          overlap=overlap, phase_sizing=phase_sizing)


def _compiler_for_args(args):
    """The compile callable the compiler/remap/cache flags select."""
    config = _autocomm_config(args)
    name = getattr(args, "compiler", "autocomm")
    if config is not None and name != "autocomm":
        raise SystemExit("error: --remap only applies to the autocomm "
                         f"compiler, not {name!r}")
    if name != "autocomm":
        return COMPILERS[name]
    cache = _cache_for_args(args)

    def autocomm_compiler(circuit, network, mapping=None,
                          config=config, cache=cache):
        return compile_autocomm(circuit, network, mapping=mapping,
                                config=config, cache=cache)

    return autocomm_compiler


def _compile_program(circuit: Circuit, network, args):
    """Compile with the selected compiler, honouring the remap flags."""
    return _compiler_for_args(args)(circuit, network)


def _report_rows(program) -> List[dict]:
    metrics = program.metrics
    rows = [
        {"metric": "compiler", "value": program.compiler},
        {"metric": "qubits", "value": program.circuit.num_qubits},
        {"metric": "gates (CX basis)", "value": len(program.circuit)},
        {"metric": "remote gates", "value": metrics.num_remote_gates},
        {"metric": "burst blocks", "value": metrics.num_blocks},
        {"metric": "communications", "value": metrics.total_comm},
        {"metric": "  TP-Comm", "value": metrics.tp_comm},
        {"metric": "  Cat-Comm", "value": metrics.cat_comm},
        {"metric": "peak REM CX / comm", "value": metrics.peak_rem_cx},
        {"metric": "latency [CX units]", "value": round(metrics.latency, 1)},
    ]
    network = program.network
    if network.topology_kind != "all-to-all" or network.heterogeneous_links:
        rows.insert(2, {"metric": "topology", "value": network.topology_kind})
        rows.append({"metric": "physical EPR pairs (swaps incl.)",
                     "value": metrics.total_epr_pairs})
    if network.heterogeneous_links:
        rows.insert(3, {"metric": "link model",
                        "value": "heterogeneous "
                                 f"({network.link_model.describe()})"})
        if metrics.total_epr_latency is not None:
            rows.append({"metric": "EPR latency volume [CX units]",
                         "value": round(metrics.total_epr_latency, 1)})
    if getattr(program, "remap", "never") != "never":
        rows.insert(1, {"metric": "remap", "value": program.remap})
        rows.append({"metric": "phases", "value": metrics.num_phases})
        rows.append({"metric": "migration moves",
                     "value": metrics.migration_moves})
        rows.append({"metric": "migration latency [CX units]",
                     "value": round(metrics.migration_latency, 1)})
        rows.append({"metric": "boundary bubble [CX units]",
                     "value": round(metrics.boundary_bubble, 1)})
        if (metrics.total_epr_latency is not None
                and not network.heterogeneous_links):
            rows.append({"metric": "EPR latency volume [CX units]",
                         "value": round(metrics.total_epr_latency, 1)})
    return rows


def _cmd_compile(args) -> int:
    circuit = _load_circuit(args.qasm)
    network = _network_from_args(circuit, args)
    program = _compile_program(circuit, network, args)
    rows = _report_rows(program)
    if args.fidelity:
        rows.append({"metric": "estimated fidelity",
                     "value": round(estimate_fidelity(program, DEFAULT_ERROR_MODEL), 4)})
    print(render_table(rows, columns=["metric", "value"]))
    if args.report is not None:
        report = report_for_program(program, kind="compile",
                                    meta={"qasm": str(args.qasm)})
        report.save(args.report)
        print(f"wrote {args.report}")
    if args.verify:
        verification = verify_program(program)
        print(verification.render())
        if not verification.ok:
            return 1
    return 0


def _cmd_compare(args) -> int:
    if not 0.0 < args.p_epr <= 1.0:
        raise SystemExit(f"error: --p-epr must be in (0, 1], got {args.p_epr}")
    if args.trials < 0:
        raise SystemExit(f"error: --trials must be >= 0, got {args.trials}")
    if args.workers < 1:
        raise SystemExit(f"error: --workers must be >= 1, got {args.workers}")
    circuit = _load_circuit(args.qasm)
    network = _network_from_args(circuit, args)
    remap_config = _autocomm_config(args)
    cache = _cache_for_args(args)
    autocomm = compile_autocomm(circuit, network, cache=cache)
    programs = [(name,
                 autocomm if name == "autocomm"
                 else compiler(circuit, network, mapping=autocomm.mapping))
                for name, compiler in sorted(COMPILERS.items())]
    if remap_config is not None:
        # The dynamically remapped pipeline as an extra contender, seeded
        # from the same initial mapping as every static compiler.  Its
        # row is named by its compiler label so --overlap and
        # --phase-sizing auto variants are distinguishable in the table.
        remapped = compile_autocomm(circuit, network,
                                    mapping=autocomm.mapping,
                                    config=remap_config, cache=cache)
        programs.append((remapped.compiler, remapped))
    rows = []
    for name, program in programs:
        row = {
            "compiler": name,
            "communications": program.metrics.total_comm,
            "tp_comm": program.metrics.tp_comm,
            "peak_rem_cx": program.metrics.peak_rem_cx,
            "latency": round(program.metrics.latency, 1),
        }
        if remap_config is not None:
            epr_latency = program.metrics.total_epr_latency
            row["epr_latency"] = (round(epr_latency, 1)
                                  if epr_latency is not None else "-")
            row["migrations"] = program.metrics.migration_moves
            row["bubble"] = round(program.metrics.boundary_bubble, 1)
        if args.fidelity:
            row["fidelity"] = round(
                estimate_fidelity(program, DEFAULT_ERROR_MODEL), 4)
        if args.trials > 0:
            # Simulated latency distribution next to the analytical number,
            # under the same seeds for every compiler (per-trial streams
            # derive from the master seed, so --workers never changes them).
            config = SimulationConfig(p_epr=args.p_epr, seed=args.seed,
                                      trials=args.trials,
                                      workers=args.workers,
                                      record_trace=False)
            monte_carlo = run_monte_carlo(program, config)
            summary = monte_carlo.summary()
            row["sim_mean"] = round(summary["mean"], 1)
            row["sim_p95"] = round(summary["p95"], 1)
        rows.append(row)
    columns = ["compiler", "communications", "tp_comm", "peak_rem_cx",
               "latency"]
    if remap_config is not None:
        columns += ["epr_latency", "migrations", "bubble"]
    if args.fidelity:
        columns.append("fidelity")
    if args.trials > 0:
        columns += ["sim_mean", "sim_p95"]
    print(render_table(rows, columns=columns))
    if args.report is not None:
        entries = []
        for name, program in programs:
            spans = getattr(program, "spans", None)
            entries.append({"compiler": name,
                            "metrics": program.metrics.as_dict(),
                            "spans": (spans.as_dict()
                                      if spans is not None else None)})
        report = RunReport(kind="compare",
                           meta={"qasm": str(args.qasm),
                                 "nodes": network.num_nodes,
                                 "topology": network.topology_kind},
                           programs=entries)
        report.save(args.report)
        print(f"wrote {args.report}")
    if args.verify:
        verify_failed = False
        for name, program in programs:
            verification = verify_program(program)
            print(verification.render())
            verify_failed = verify_failed or not verification.ok
        if verify_failed:
            return 1
    return 0


def _cmd_simulate(args) -> int:
    if not 0.0 < args.p_epr <= 1.0:
        raise SystemExit(f"error: --p-epr must be in (0, 1], got {args.p_epr}")
    if args.trials < 1:
        raise SystemExit(f"error: --trials must be >= 1, got {args.trials}")
    if args.workers < 1:
        raise SystemExit(f"error: --workers must be >= 1, got {args.workers}")
    if args.retry_latency is not None and args.retry_latency <= 0:
        raise SystemExit("error: --retry-latency must be positive")
    if args.link_capacity is not None and args.link_capacity < 1:
        raise SystemExit("error: --link-capacity must be >= 1")
    circuit = _load_circuit(args.qasm)
    network = _network_from_args(circuit, args)
    program = _compile_program(circuit, network, args)

    # Deterministic replay first: the simulated execution must reproduce the
    # analytical schedule latency exactly.  Ideal links match the analytical
    # model's assumptions (capacities and per-link loss ignored, per-link
    # latencies kept), so the check stays meaningful under any link spec.
    deterministic = simulate_program(program, SimulationConfig(ideal_links=True))
    report = validate_schedule(program, result=deterministic)
    monte_carlo = None
    # A capacity-limited or lossy link is a study of its own even at
    # p_epr = 1.0: the validation replay above stays unconstrained (it
    # checks the analytical model), while the study branch reflects every
    # flag the user passed plus the link model's own capacities/p_epr.
    link_model = network.link_model
    constrained_links = link_model is not None and (
        link_model.has_capacities or not link_model.deterministic)
    if (args.p_epr < 1.0 or args.trials > 1
            or args.link_capacity is not None or constrained_links):
        config = SimulationConfig(p_epr=args.p_epr,
                                  retry_latency=args.retry_latency,
                                  seed=args.seed, trials=args.trials,
                                  link_capacity=args.link_capacity,
                                  ideal_links=args.ideal_links,
                                  workers=args.workers)
        monte_carlo = run_monte_carlo(program, config)

    row = simulation_row(report, monte_carlo)
    if network.topology_kind != "all-to-all" or network.heterogeneous_links:
        row["topology"] = network.topology_kind
        row["total_comm"] = program.metrics.total_comm
        # Compiler-side per-block accounting vs pairs the replayed
        # execution actually generated (fusion savings included).
        row["total_epr_pairs"] = program.metrics.total_epr_pairs
        row["sim_epr_pairs"] = deterministic.total_epr_pairs
    print(render_table([row]))
    if not report.matches:
        print(f"warning: {report.describe()}", file=sys.stderr)

    shown = (monte_carlo.sample_trial if monte_carlo is not None
             and monte_carlo.sample_trial is not None else deterministic)
    if args.timeline:
        print()
        print(simulation_timeline(shown, network.num_nodes))
    if args.trace is not None:
        print()
        print(shown.trace.render(limit=args.trace))
    if args.trace_out is not None:
        count = shown.trace.write_jsonl(args.trace_out)
        print(f"wrote {args.trace_out} ({count} events)")
    if args.report is not None:
        simulation = {
            "validation": {
                "matches": report.matches,
                "analytical_latency": report.analytical_latency,
                "simulated_latency": report.simulated_latency,
                "max_op_end_delta": report.max_op_end_delta,
            },
        }
        if monte_carlo is not None:
            simulation["monte_carlo"] = monte_carlo.summary()
            if monte_carlo.metrics is not None:
                simulation["sim_metrics"] = monte_carlo.metrics.as_dict()
        elif deterministic.metrics is not None:
            simulation["sim_metrics"] = deterministic.metrics.as_dict()
        run_report = report_for_program(program, kind="simulate",
                                        meta={"qasm": str(args.qasm),
                                              "p_epr": args.p_epr,
                                              "trials": args.trials,
                                              "seed": args.seed})
        run_report.simulation = simulation
        run_report.save(args.report)
        print(f"wrote {args.report}")
    if args.verify:
        # Static checks over the compiled artifact plus a post-hoc sanitize
        # of the deterministic replay's op records and trace.
        verification = verify_program(program)
        verification.merge(sanitize_simulation(
            program, deterministic, SimulationConfig(ideal_links=True)))
        print(verification.render())
        if not verification.ok:
            return 1
    return 0 if report.matches else 1


def _cmd_verify(args) -> int:
    import json

    from .verify import registered_passes

    if args.list_checks:
        for check_id, cls in sorted(registered_passes().items()):
            print(f"{check_id:20s} [{cls.scope:7s}] {cls.description}")
        return 0
    if args.qasm is None and args.trace is None:
        raise SystemExit("error: verify needs a qasm file, --trace FILE "
                         "or --list-checks")

    trace_violations: List[str] = []
    if args.trace is not None:
        if not args.trace.exists():
            raise SystemExit(f"error: no such trace file: {args.trace}")
        try:
            payload = json.loads(args.trace.read_text())
        except ValueError as exc:
            raise SystemExit(f"error: {args.trace} is not valid JSON: {exc}")
        events = (payload.get("traceEvents")
                  if isinstance(payload, dict) else payload)
        if not isinstance(events, list):
            raise SystemExit(f"error: {args.trace} holds no trace-event "
                             "list (expected a traceEvents object or a "
                             "bare JSON array)")
        trace_violations = validate_trace_events(events)
        print(f"trace {args.trace}: {len(events)} events, "
              f"{len(trace_violations)} violations")
        for violation in trace_violations:
            print(f"  error: chrome-trace: {violation}")

    report = None
    if args.qasm is not None:
        if args.nodes is None:
            raise SystemExit("error: --nodes is required when verifying a "
                             "qasm input")
        circuit = _load_circuit(args.qasm)
        network = _network_from_args(circuit, args)
        program = _compile_program(circuit, network, args)
        report = verify_program(program)
        if args.simulate:
            config = SimulationConfig(ideal_links=True)
            result = simulate_program(program, config)
            report.merge(sanitize_simulation(program, result, config))
        print(report.render())

    if args.json is not None:
        payload = {"command": "verify", "schema": 1}
        if report is not None:
            payload["report"] = report.as_dict()
        if args.trace is not None:
            payload["trace"] = {"file": str(args.trace),
                                "violations": trace_violations}
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    failed = bool(trace_violations)
    if report is not None:
        failed = (failed or not report.ok
                  or (args.strict and bool(report.warnings)))
    return 1 if failed else 0


def _cmd_trace(args) -> int:
    if not 0.0 < args.p_epr <= 1.0:
        raise SystemExit(f"error: --p-epr must be in (0, 1], got {args.p_epr}")
    circuit = _load_circuit(args.qasm)
    network = _network_from_args(circuit, args)
    program = _compile_program(circuit, network, args)

    events = []
    spans = getattr(program, "spans", None)
    if spans is not None:
        events.extend(span_trace_events(spans, pid=PID_COMPILE))
    if not args.no_sim:
        result = simulate_program(program,
                                  SimulationConfig(p_epr=args.p_epr,
                                                   seed=args.seed))
        events.extend(simulation_trace_events(result))

    out = args.out
    if out is None:
        out = args.qasm.with_name(args.qasm.stem + ".trace.json")
    write_chrome_trace(out, events)
    print(f"wrote {out} ({len(events)} events) — open in chrome://tracing "
          "or https://ui.perfetto.dev")
    violations = validate_trace_events(events)
    if violations:
        for violation in violations:
            print(f"warning: {violation}", file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args) -> int:
    import cProfile
    import json
    import pstats
    import statistics
    import time

    if args.repeat < 1:
        raise SystemExit(f"error: --repeat must be >= 1, got {args.repeat}")
    if not 0.0 < args.p_epr <= 1.0:
        raise SystemExit(f"error: --p-epr must be in (0, 1], got {args.p_epr}")
    from .ir.commutation import clear_commutation_cache, commutation_cache_stats
    from .sim import run_monte_carlo as _run_mc

    circuit = _load_circuit(args.qasm)
    network = _network_from_args(circuit, args)
    compiler = _compiler_for_args(args)

    compile_times = []
    for _ in range(args.repeat):
        clear_commutation_cache()
        begin = time.perf_counter()
        program = compiler(circuit, network)
        compile_times.append(time.perf_counter() - begin)
    cache_stats = commutation_cache_stats()

    simulate_times = []
    sim_config = None
    if args.simulate_trials > 0:
        from .sim import SimulationConfig
        sim_config = SimulationConfig(p_epr=args.p_epr, seed=args.seed,
                                      trials=args.simulate_trials,
                                      record_trace=False,
                                      workers=args.workers)
        for _ in range(args.repeat):
            begin = time.perf_counter()
            _run_mc(program, sim_config)
            simulate_times.append(time.perf_counter() - begin)

    # One profiled pass over the same workload for the hotspot table.
    clear_commutation_cache()
    profiler = cProfile.Profile()
    profiler.enable()
    program = compiler(circuit, network)
    if sim_config is not None:
        _run_mc(program, sim_config)
    profiler.disable()

    stats = pstats.Stats(profiler)
    hotspots = []
    for func, (cc, ncalls, tottime, cumtime, _) in sorted(
            stats.stats.items(), key=lambda kv: -kv[1][3]):
        filename, line, name = func
        if "cProfile" in name or filename.startswith("<"):
            continue
        hotspots.append({
            "function": f"{Path(filename).name}:{line}({name})",
            "ncalls": ncalls,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        })
        if len(hotspots) >= args.top:
            break

    rows = [{"metric": "compiler", "value": args.compiler},
            {"metric": "gates (CX basis)", "value": len(program.circuit)},
            {"metric": "compile median [ms]",
             "value": round(statistics.median(compile_times) * 1e3, 2)},
            {"metric": "compile runs [ms]",
             "value": " ".join(f"{t * 1e3:.2f}" for t in compile_times)},
            {"metric": "commutation cache hits/misses",
             "value": f"{cache_stats['hits']}/{cache_stats['misses']}"}]
    spans = getattr(program, "spans", None)
    if spans is not None:
        # Top-level pass timings from the profiled compile's span tree; the
        # full nested tree follows the hotspot table.
        for child in spans.children:
            rows.append({"metric": f"  stage {child.name} [ms]",
                         "value": round(child.duration * 1e3, 2)})
    if simulate_times:
        rows.append({"metric": f"simulate {args.simulate_trials} trials "
                               "median [ms]",
                     "value": round(statistics.median(simulate_times) * 1e3, 2)})
    print(render_table(rows, columns=["metric", "value"]))
    if spans is not None:
        print()
        print("compile stage tree (profiled run):")
        print(spans.render())
    print()
    print(f"top {len(hotspots)} hotspots by cumulative time:")
    print(render_table(hotspots,
                       columns=["function", "ncalls", "tottime_s", "cumtime_s"]))

    if args.json is not None:
        payload = {
            "command": "profile",
            "schema": 1,
            "qasm": str(args.qasm),
            "compiler": args.compiler,
            "nodes": args.nodes,
            "topology": args.topology,
            "remap": args.remap,
            "overlap": getattr(args, "overlap", False),
            "boundary_bubble": program.metrics.boundary_bubble,
            "gates": len(program.circuit),
            "compile_s": {"median": statistics.median(compile_times),
                          "runs": compile_times},
            "commutation_cache": cache_stats,
            "hotspots": hotspots,
        }
        if spans is not None:
            payload["stages"] = spans.as_dict()
        if simulate_times:
            payload["simulate_s"] = {"median": statistics.median(simulate_times),
                                     "runs": simulate_times,
                                     "trials": args.simulate_trials,
                                     "p_epr": args.p_epr}
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


def _cache_from_args(args):
    """The cache the ``cache`` subcommand addresses; SystemExit when none."""
    from .persist import CACHE_DIR_ENV, resolve_cache
    cache = resolve_cache(args.cache_dir)
    if cache is None:
        raise SystemExit(f"error: give --cache-dir or set {CACHE_DIR_ENV}")
    return cache


def _cmd_cache(args) -> int:
    if args.cache_command == "stats":
        cache = _cache_from_args(args)
        stats = cache.stats()
        rows = [{"metric": "directory", "value": stats["directory"]},
                {"metric": "entries", "value": stats["entries"]},
                {"metric": "total bytes", "value": stats["total_bytes"]}]
        for name, value in sorted(stats["counters"].items()):
            rows.append({"metric": f"{name} (cumulative)", "value": value})
        print(render_table(rows, columns=["metric", "value"]))
        return 0
    if args.cache_command == "clear":
        cache = _cache_from_args(args)
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
        return 0

    # warm: compile benchmark circuits into the cache.
    cache = _cache_from_args(args)
    if args.families is None:
        families = sorted(BENCHMARK_FAMILIES)
    else:
        families = [f.strip().upper() for f in args.families.split(",")
                    if f.strip()]
        unknown = sorted(set(families) - set(BENCHMARK_FAMILIES))
        if unknown:
            raise SystemExit("error: unknown benchmark families "
                             f"{', '.join(unknown)}; choose from "
                             f"{', '.join(sorted(BENCHMARK_FAMILIES))}")
    config = _autocomm_config(args)
    rows = []
    for family in families:
        circuit, _ = build_benchmark(family, args.qubits, args.nodes,
                                     comm_qubits_per_node=args.comm_qubits)
        network = _network_from_args(circuit, args)
        already = cache.counters()["hits"]
        program = compile_autocomm(circuit, network, config=config,
                                   cache=cache)
        rows.append({"circuit": program.circuit.name,
                     "gates": len(program.circuit),
                     "latency": round(program.metrics.latency, 1),
                     "source": ("warm" if cache.counters()["hits"] > already
                                else "cold")})
    print(render_table(rows,
                       columns=["circuit", "gates", "latency", "source"]))
    counters = cache.counters()
    print(f"cache {cache.directory}: {counters['hits']} hits, "
          f"{counters['stores']} stores this run")
    return 0


def _cmd_generate(args) -> int:
    circuit, _ = build_benchmark(args.family.upper(), args.qubits, num_nodes=1)
    text = to_qasm(circuit)
    if args.output is None:
        print(text, end="")
    else:
        args.output.write_text(text)
        print(f"wrote {args.output} ({circuit.num_qubits} qubits, "
              f"{len(circuit)} gates)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"compile": _cmd_compile, "compare": _cmd_compare,
                "simulate": _cmd_simulate, "generate": _cmd_generate,
                "profile": _cmd_profile, "trace": _cmd_trace,
                "verify": _cmd_verify, "cache": _cmd_cache}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
