"""The arithmetic program snippet of Figure 4.

The paper's running example is a small snippet "modified from quantum
arithmetic circuits" with seven qubits spread over three nodes.  The exact
gate list is only shown graphically, so this module provides a
representative reconstruction with the properties the paper's walk-through
relies on:

* qubit ``q3`` (hosted on node B) interacts with node A through six remote
  CX gates, making (q3, node A) the hub pair picked by preprocessing (the
  paper's figure shows five; one extra keeps our final burst bidirectional);
* the remote gates come in both directions (q3 as control and as target), so
  the aggregation result contains unidirectional and bidirectional blocks;
* a ``T``/``Tdg`` gate on the hub qubit separates two remote CX gates of one
  otherwise-unidirectional block, which forces the tie-case TP-Comm
  assignment discussed in Section 4.3;
* a local CX (``q5, q3``) that commutes with neither neighbouring block
  breaks the linear merge exactly as in Figure 8.

The default node layout is ``{q0, q1, q2} -> A``, ``{q3, q4} -> B``,
``{q5, q6} -> C``.
"""

from __future__ import annotations

from typing import Dict

from ..ir.circuit import Circuit

__all__ = ["arithmetic_snippet", "arithmetic_snippet_layout"]


def arithmetic_snippet(name: str = "arithmetic-snippet") -> Circuit:
    """Build the Figure 4 style arithmetic snippet (7 qubits, 3 nodes)."""
    circuit = Circuit(7, name=name)
    # Stage 1: q3 driven by node-A qubits (unidirectional-target burst).
    circuit.t(0)
    circuit.cx(1, 3)
    circuit.h(4)
    circuit.cx(2, 3)
    circuit.rz(0.25, 1)
    # Stage 2: remote interaction with node C interleaved (different pair).
    circuit.cx(1, 6)
    # Stage 3: q3 now drives node-A qubits, with a Tdg splitting the run.
    circuit.cx(3, 0)
    circuit.tdg(3)
    circuit.cx(3, 1)
    # A local gate inside node B.
    circuit.t(4)
    circuit.cx(4, 3)
    # Stage 4: local CX that blocks the merge (q5 on node C with q3).
    circuit.cx(5, 3)
    # Stage 5: final burst between q3 and node A, mixed direction.
    circuit.cx(3, 2)
    circuit.cx(0, 3)
    circuit.h(6)
    circuit.cx(2, 6)
    return circuit


def arithmetic_snippet_layout() -> Dict[int, int]:
    """Default qubit-to-node assignment used by the paper's walk-through."""
    return {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2}
