"""QAOA max-cut benchmark circuit.

QAOA is the paper's flagship near-term application benchmark.  Each layer
applies an ``RZZ`` interaction per graph edge followed by ``RX`` mixers; the
ZZ interactions of edges that cross the node partition become remote and,
because they all commute, are an ideal target for commutation-aware
aggregation (Section 3.2, Figure 6).
"""

from __future__ import annotations

from typing import Optional, Sequence

import networkx as nx

from ..ir.circuit import Circuit

__all__ = ["qaoa_maxcut_circuit", "random_maxcut_graph", "qaoa_circuit_for_graph"]


def random_maxcut_graph(num_nodes: int, degree: int = 3,
                        seed: Optional[int] = None) -> nx.Graph:
    """Random regular graph used as the max-cut instance.

    Falls back to an Erdős–Rényi graph with matching expected degree when a
    regular graph of the requested degree does not exist.
    """
    if num_nodes <= degree or (num_nodes * degree) % 2 != 0:
        probability = min(1.0, degree / max(1, num_nodes - 1))
        return nx.gnp_random_graph(num_nodes, probability, seed=seed)
    return nx.random_regular_graph(degree, num_nodes, seed=seed)


def qaoa_circuit_for_graph(graph: nx.Graph, layers: int = 1,
                           gamma: Optional[Sequence[float]] = None,
                           beta: Optional[Sequence[float]] = None,
                           name: str | None = None) -> Circuit:
    """Build a QAOA max-cut circuit for an explicit graph."""
    num_qubits = graph.number_of_nodes()
    if num_qubits < 2:
        raise ValueError("QAOA needs at least two qubits")
    gammas = list(gamma) if gamma is not None else [0.4 + 0.1 * p for p in range(layers)]
    betas = list(beta) if beta is not None else [0.7 - 0.1 * p for p in range(layers)]
    if len(gammas) != layers or len(betas) != layers:
        raise ValueError("need one gamma and one beta per layer")

    circuit = Circuit(num_qubits, name=name or f"qaoa-{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    edges = sorted((min(a, b), max(a, b)) for a, b in graph.edges())
    for layer in range(layers):
        for a, b in edges:
            circuit.rzz(2.0 * gammas[layer], a, b)
        for qubit in range(num_qubits):
            circuit.rx(2.0 * betas[layer], qubit)
    return circuit


def qaoa_maxcut_circuit(num_qubits: int, layers: int = 1, degree: int = 3,
                        seed: Optional[int] = 11,
                        name: str | None = None) -> Circuit:
    """Build a QAOA max-cut circuit on a random ``degree``-regular graph."""
    graph = random_maxcut_graph(num_qubits, degree=degree, seed=seed)
    return qaoa_circuit_for_graph(graph, layers=layers,
                                  name=name or f"qaoa-{num_qubits}")
