"""Bernstein-Vazirani benchmark circuit.

All oracle CX gates share the same target (the ancilla qubit), so under any
distribution of qubits the remote gates form large unidirectional-target
bursts — BV is the paper's best case for Cat-Comm (zero TP-Comm blocks in
Table 3).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..ir.circuit import Circuit

__all__ = ["bv_circuit", "random_secret"]


def random_secret(num_bits: int, density: float = 0.7,
                  seed: Optional[int] = None) -> Sequence[int]:
    """Draw a random secret string with roughly ``density`` ones."""
    rng = np.random.default_rng(seed)
    secret = (rng.random(num_bits) < density).astype(int)
    if not secret.any():
        secret[0] = 1
    return tuple(int(b) for b in secret)


def bv_circuit(num_qubits: int, secret: Optional[Sequence[int]] = None,
               seed: Optional[int] = 7, name: str | None = None) -> Circuit:
    """Build a Bernstein-Vazirani circuit on ``num_qubits`` qubits.

    The last qubit is the oracle ancilla; the remaining ``num_qubits - 1``
    qubits carry the secret string.  When ``secret`` is omitted a random
    string (seeded for reproducibility) is used.
    """
    if num_qubits < 2:
        raise ValueError("BV needs at least two qubits (one input + ancilla)")
    num_bits = num_qubits - 1
    if secret is None:
        secret = random_secret(num_bits, seed=seed)
    if len(secret) != num_bits:
        raise ValueError(f"secret must have {num_bits} bits, got {len(secret)}")
    ancilla = num_qubits - 1
    circuit = Circuit(num_qubits, name=name or f"bv-{num_qubits}")
    for qubit in range(num_bits):
        circuit.h(qubit)
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit, bit in enumerate(secret):
        if bit:
            circuit.cx(qubit, ancilla)
    for qubit in range(num_bits):
        circuit.h(qubit)
    return circuit
