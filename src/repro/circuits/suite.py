"""Benchmark suite definitions (Table 2 of the paper).

Two configuration sets are provided:

* :func:`paper_configurations` — the exact (#qubit, #node) points of Table 2
  (MCTR/RCA/QFT/BV/QAOA at 100/200/300 qubits with 10 qubits per node, and
  UCCSD at 8/12/16 qubits with 2 qubits per node).
* :func:`scaled_configurations` — smaller instances with the same
  qubits-per-node ratio, used by the default benchmark harness so that a
  full run finishes in minutes on a laptop.  Every harness accepts the
  paper-size configurations as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..hardware.network import QuantumNetwork, uniform_network
from ..ir.circuit import Circuit
from .bv import bv_circuit
from .mctr import mctr_circuit
from .qaoa import qaoa_maxcut_circuit
from .qft import qft_circuit
from .rca import rca_circuit_for_width
from .uccsd import uccsd_circuit

__all__ = ["BenchmarkSpec", "build_benchmark", "paper_configurations",
           "scaled_configurations", "BENCHMARK_FAMILIES"]


def _build_mctr(num_qubits: int) -> Circuit:
    return mctr_circuit(num_qubits, name=f"MCTR-{num_qubits}")


def _build_rca(num_qubits: int) -> Circuit:
    return rca_circuit_for_width(num_qubits, name=f"RCA-{num_qubits}")


def _build_qft(num_qubits: int) -> Circuit:
    return qft_circuit(num_qubits, name=f"QFT-{num_qubits}")


def _build_bv(num_qubits: int) -> Circuit:
    return bv_circuit(num_qubits, name=f"BV-{num_qubits}")


def _build_qaoa(num_qubits: int) -> Circuit:
    return qaoa_maxcut_circuit(num_qubits, layers=1, degree=3,
                               name=f"QAOA-{num_qubits}")


def _build_uccsd(num_qubits: int) -> Circuit:
    return uccsd_circuit(num_qubits, name=f"UCCSD-{num_qubits}")


#: family name -> circuit builder taking the qubit count.
BENCHMARK_FAMILIES: Dict[str, Callable[[int], Circuit]] = {
    "MCTR": _build_mctr,
    "RCA": _build_rca,
    "QFT": _build_qft,
    "BV": _build_bv,
    "QAOA": _build_qaoa,
    "UCCSD": _build_uccsd,
}


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark instance: a circuit family and a machine configuration."""

    family: str
    num_qubits: int
    num_nodes: int

    @property
    def name(self) -> str:
        return f"{self.family}-{self.num_qubits}-{self.num_nodes}"

    @property
    def qubits_per_node(self) -> int:
        return -(-self.num_qubits // self.num_nodes)  # ceiling division

    def build(self, comm_qubits_per_node: int = 2) -> Tuple[Circuit, QuantumNetwork]:
        """Instantiate the circuit and a matching uniform network."""
        circuit, network = build_benchmark(self.family, self.num_qubits,
                                           self.num_nodes,
                                           comm_qubits_per_node=comm_qubits_per_node)
        return circuit, network


def build_benchmark(family: str, num_qubits: int, num_nodes: int,
                    comm_qubits_per_node: int = 2) -> Tuple[Circuit, QuantumNetwork]:
    """Build one benchmark circuit and its target network."""
    try:
        builder = BENCHMARK_FAMILIES[family.upper()]
    except KeyError:
        raise ValueError(f"unknown benchmark family {family!r}; choose from "
                         f"{sorted(BENCHMARK_FAMILIES)}") from None
    circuit = builder(num_qubits)
    qubits_per_node = -(-num_qubits // num_nodes)
    network = uniform_network(num_nodes, qubits_per_node,
                              comm_qubits_per_node=comm_qubits_per_node)
    return circuit, network


def paper_configurations() -> List[BenchmarkSpec]:
    """The 18 (family, #qubit, #node) points of Table 2."""
    specs: List[BenchmarkSpec] = []
    for family in ("MCTR", "RCA", "QFT", "BV", "QAOA"):
        for num_qubits, num_nodes in ((100, 10), (200, 20), (300, 30)):
            specs.append(BenchmarkSpec(family, num_qubits, num_nodes))
    for num_qubits, num_nodes in ((8, 4), (12, 6), (16, 8)):
        specs.append(BenchmarkSpec("UCCSD", num_qubits, num_nodes))
    return specs


def scaled_configurations(scale: str = "small") -> List[BenchmarkSpec]:
    """Reduced-size instances with the paper's 10-qubits-per-node ratio.

    ``scale="small"`` targets seconds-per-program; ``scale="medium"`` targets
    roughly a minute per program and is closer to the paper's smallest
    configuration.
    """
    if scale == "small":
        general = ((20, 2), (30, 3))
        uccsd = ((8, 4),)
    elif scale == "medium":
        general = ((40, 4), (60, 6))
        uccsd = ((8, 4), (12, 6))
    else:
        raise ValueError("scale must be 'small' or 'medium'")
    specs: List[BenchmarkSpec] = []
    for family in ("MCTR", "RCA", "QFT", "BV", "QAOA"):
        for num_qubits, num_nodes in general:
            specs.append(BenchmarkSpec(family, num_qubits, num_nodes))
    for num_qubits, num_nodes in uccsd:
        specs.append(BenchmarkSpec("UCCSD", num_qubits, num_nodes))
    return specs
