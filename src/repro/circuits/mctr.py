"""Multi-controlled gate (MCTR) benchmark circuit.

The MCTR benchmark of Table 2 is a wide multi-controlled X (Toffoli
generalisation) spanning the whole register.  We realise it with the
V-chain construction (:func:`repro.ir.decompose.mct_v_chain`): half of the
register supplies the controls, the middle qubits act as ancillas and the
last qubit is the target, so every qubit participates and the Toffoli
cascade creates long chains of remote interactions once distributed.
"""

from __future__ import annotations

from ..ir.circuit import Circuit
from ..ir.decompose import mct_v_chain

__all__ = ["mctr_circuit"]


def mctr_circuit(num_qubits: int, repetitions: int = 1,
                 name: str | None = None) -> Circuit:
    """Build the MCTR benchmark on ``num_qubits`` qubits.

    The register is split into ``k = (num_qubits + 1) // 2`` controls,
    ``k - 2`` ancillas and one target (any spare qubits stay idle).
    ``repetitions`` repeats the multi-controlled gate, which scales the gate
    count without changing the communication structure (useful for latency
    sweeps).
    """
    if num_qubits < 3:
        raise ValueError("MCTR needs at least 3 qubits")
    num_controls = (num_qubits + 1) // 2
    controls = list(range(num_controls))
    num_ancillas = max(0, num_controls - 2)
    ancillas = list(range(num_controls, num_controls + num_ancillas))
    target = num_controls + num_ancillas
    if target >= num_qubits:
        # Small registers: shrink the control count so everything fits.
        num_controls = (num_qubits - 1 + 2) // 2
        controls = list(range(num_controls))
        ancillas = list(range(num_controls, num_qubits - 1))
        target = num_qubits - 1

    circuit = Circuit(num_qubits, name=name or f"mctr-{num_qubits}")
    single = mct_v_chain(controls, target, ancillas)
    for _ in range(max(1, repetitions)):
        circuit.extend(single.gates)
    return circuit
