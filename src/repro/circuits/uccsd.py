"""UCCSD ansatz benchmark circuit.

Unitary Coupled Cluster with singles and doubles, Jordan-Wigner encoded, as
used for the LiH / BeH2 / CH4 programs of Table 2.  Each excitation term is
exponentiated with the textbook basis-change + CX-ladder + RZ + un-ladder
construction, so the circuit is already close to the CX basis and exhibits
long same-qubit CX chains — the burst structure AutoComm exploits on UCCSD.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

from ..ir.circuit import Circuit

__all__ = ["uccsd_circuit", "pauli_string_exponential"]

# Pauli strings of a JW single excitation on (i, a): 1/2 (X_i Y_a - Y_i X_a)
_SINGLE_TERMS: Tuple[Tuple[str, str], ...] = (("x", "y"), ("y", "x"))

# Pauli strings of a JW double excitation on (i, j, a, b): eight 4-local terms.
_DOUBLE_TERMS: Tuple[Tuple[str, str, str, str], ...] = (
    ("x", "x", "x", "y"), ("x", "x", "y", "x"),
    ("x", "y", "x", "x"), ("y", "x", "x", "x"),
    ("x", "y", "y", "y"), ("y", "x", "y", "y"),
    ("y", "y", "x", "y"), ("y", "y", "y", "x"),
)


def _basis_change(circuit: Circuit, qubit: int, pauli: str, undo: bool) -> None:
    if pauli == "x":
        circuit.h(qubit)
    elif pauli == "y":
        if undo:
            circuit.h(qubit)
            circuit.s(qubit)
        else:
            circuit.sdg(qubit)
            circuit.h(qubit)
    elif pauli != "z":
        raise ValueError(f"unsupported Pauli {pauli!r}")


def pauli_string_exponential(circuit: Circuit, qubits: Sequence[int],
                             paulis: Sequence[str], angle: float) -> None:
    """Append ``exp(-i angle/2 * P)`` for a Pauli string ``P`` on ``qubits``.

    Uses the usual CX ladder onto the last qubit with Z-basis changes on
    X/Y factors.  Identity factors should simply be omitted from ``qubits``.
    """
    if len(qubits) != len(paulis):
        raise ValueError("one Pauli per qubit required")
    if not qubits:
        return
    for qubit, pauli in zip(qubits, paulis):
        _basis_change(circuit, qubit, pauli, undo=False)
    for left, right in zip(qubits[:-1], qubits[1:]):
        circuit.cx(left, right)
    circuit.rz(angle, qubits[-1])
    for left, right in zip(reversed(qubits[:-1]), reversed(qubits[1:])):
        circuit.cx(left, right)
    for qubit, pauli in zip(qubits, paulis):
        _basis_change(circuit, qubit, pauli, undo=True)


def uccsd_circuit(num_qubits: int, num_occupied: Optional[int] = None,
                  amplitude: float = 0.1, include_doubles: bool = True,
                  name: str | None = None) -> Circuit:
    """Build a UCCSD ansatz on ``num_qubits`` spin orbitals.

    Args:
        num_qubits: number of spin orbitals (qubits).
        num_occupied: occupied orbitals (defaults to half filling).
        amplitude: common excitation amplitude used for every term (the
            communication structure does not depend on the values).
        include_doubles: include the double excitations (dominant cost).
    """
    if num_qubits < 4:
        raise ValueError("UCCSD needs at least 4 qubits")
    occupied = num_occupied if num_occupied is not None else num_qubits // 2
    if not 0 < occupied < num_qubits:
        raise ValueError("occupied orbital count must be within the register")
    virtual = list(range(occupied, num_qubits))
    occupied_orbitals = list(range(occupied))

    circuit = Circuit(num_qubits, name=name or f"uccsd-{num_qubits}")
    # Reference (Hartree-Fock) state.
    for qubit in occupied_orbitals:
        circuit.x(qubit)

    # Single excitations.
    for i in occupied_orbitals:
        for a in virtual:
            span = list(range(i, a + 1))
            for paulis in _SINGLE_TERMS:
                full = ["z"] * len(span)
                full[0] = paulis[0]
                full[-1] = paulis[1]
                pauli_string_exponential(circuit, span, full, amplitude)

    # Double excitations.
    if include_doubles:
        for i, j in itertools.combinations(occupied_orbitals, 2):
            for a, b in itertools.combinations(virtual, 2):
                qubits = [i, j, a, b]
                for paulis in _DOUBLE_TERMS:
                    pauli_string_exponential(circuit, qubits, list(paulis),
                                             amplitude / 8.0)
    return circuit
