"""Quantum Fourier Transform benchmark circuit.

The QFT is the building-block benchmark of Table 2; its dense pattern of
controlled-phase rotations (every qubit controlled by every later qubit)
makes it the richest source of burst communication in the suite, as the
analysis in Section 3.2 of the paper shows.
"""

from __future__ import annotations

import math

from ..ir.circuit import Circuit

__all__ = ["qft_circuit"]


def qft_circuit(num_qubits: int, include_swaps: bool = False,
                name: str | None = None) -> Circuit:
    """Build an ``num_qubits``-qubit QFT.

    Uses the controlled-RZ formulation of the paper (Figure 5): qubit ``i``
    receives a ``CRZ(pi / 2**(j - i))`` controlled by every later qubit ``j``.
    The final qubit-reversal swaps are omitted by default (they are usually
    absorbed into a relabelling and the paper's gate counts exclude them).
    """
    if num_qubits < 1:
        raise ValueError("QFT needs at least one qubit")
    circuit = Circuit(num_qubits, name=name or f"qft-{num_qubits}")
    for i in range(num_qubits):
        circuit.h(i)
        for j in range(i + 1, num_qubits):
            angle = math.pi / (2 ** (j - i))
            circuit.crz(angle, j, i)
    if include_swaps:
        for i in range(num_qubits // 2):
            circuit.swap(i, num_qubits - 1 - i)
    return circuit
