"""Ripple-carry adder benchmark circuit (Cuccaro construction).

The VBE/Cuccaro ripple-carry adder is the arithmetic building block of
Table 2.  Its MAJ/UMA cascade produces chains of CX and Toffoli gates along
neighbouring qubits, giving medium-sized burst blocks with mixed
control/target roles (which is why RCA needs TP-Comm in Table 3).
"""

from __future__ import annotations

from ..ir.circuit import Circuit

__all__ = ["ripple_carry_adder", "rca_circuit_for_width"]


def _maj(circuit: Circuit, a: int, b: int, c: int) -> None:
    """Majority gadget of the Cuccaro adder."""
    circuit.cx(c, b)
    circuit.cx(c, a)
    circuit.ccx(a, b, c)


def _uma(circuit: Circuit, a: int, b: int, c: int) -> None:
    """Un-majority-and-add gadget of the Cuccaro adder."""
    circuit.ccx(a, b, c)
    circuit.cx(c, a)
    circuit.cx(a, b)


def ripple_carry_adder(num_bits: int, name: str | None = None) -> Circuit:
    """Build a Cuccaro ripple-carry adder for two ``num_bits``-bit registers.

    Register layout: qubit 0 is the carry-in, followed by interleaved
    ``b_i, a_i`` pairs, with the final qubit the carry-out — ``2 * num_bits + 2``
    qubits in total.
    """
    if num_bits < 1:
        raise ValueError("adder needs at least one bit")
    num_qubits = 2 * num_bits + 2
    circuit = Circuit(num_qubits, name=name or f"rca-{num_qubits}")
    carry_in = 0
    carry_out = num_qubits - 1

    def b_index(i: int) -> int:
        return 1 + 2 * i

    def a_index(i: int) -> int:
        return 2 + 2 * i

    _maj(circuit, carry_in, b_index(0), a_index(0))
    for i in range(1, num_bits):
        _maj(circuit, a_index(i - 1), b_index(i), a_index(i))
    circuit.cx(a_index(num_bits - 1), carry_out)
    for i in reversed(range(1, num_bits)):
        _uma(circuit, a_index(i - 1), b_index(i), a_index(i))
    _uma(circuit, carry_in, b_index(0), a_index(0))
    return circuit


def rca_circuit_for_width(num_qubits: int, name: str | None = None) -> Circuit:
    """Build the largest ripple-carry adder fitting in ``num_qubits`` qubits.

    The circuit is then padded (by construction it simply does not touch the
    spare qubits) so that its register width is exactly ``num_qubits``, which
    keeps the node layouts of Table 2 directly comparable.
    """
    if num_qubits < 4:
        raise ValueError("need at least 4 qubits for a 1-bit adder")
    num_bits = (num_qubits - 2) // 2
    adder = ripple_carry_adder(num_bits)
    padded = Circuit(num_qubits, name=name or f"rca-{num_qubits}")
    padded.extend(adder.gates)
    return padded
