"""Random circuit generators for property-based testing and fuzzing."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..ir.circuit import Circuit
from ..ir.gates import Gate

__all__ = ["random_circuit", "random_clifford_t_circuit"]

_ONE_QUBIT = ("x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "rz")
_TWO_QUBIT = ("cx", "cz", "crz", "rzz", "swap")
_CLIFFORD_T_1Q = ("x", "z", "h", "s", "sdg", "t", "tdg")
_CLIFFORD_T_2Q = ("cx", "cz")


def _random_gate(rng: np.random.Generator, num_qubits: int,
                 one_qubit: Sequence[str], two_qubit: Sequence[str],
                 two_qubit_prob: float) -> Gate:
    if num_qubits >= 2 and rng.random() < two_qubit_prob:
        name = str(rng.choice(two_qubit))
        a, b = rng.choice(num_qubits, size=2, replace=False)
        params = (float(rng.uniform(0, 2 * np.pi)),) if name in ("crz", "rzz") else ()
        return Gate(name, (int(a), int(b)), params)
    name = str(rng.choice(one_qubit))
    qubit = int(rng.integers(num_qubits))
    params = (float(rng.uniform(0, 2 * np.pi)),) if name in ("rx", "ry", "rz") else ()
    return Gate(name, (qubit,), params)


def random_circuit(num_qubits: int, num_gates: int, seed: Optional[int] = None,
                   two_qubit_prob: float = 0.5,
                   name: str = "random") -> Circuit:
    """A random circuit over the full registered gate alphabet."""
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=name)
    for _ in range(num_gates):
        circuit.append(_random_gate(rng, num_qubits, _ONE_QUBIT, _TWO_QUBIT,
                                    two_qubit_prob))
    return circuit


def random_clifford_t_circuit(num_qubits: int, num_gates: int,
                              seed: Optional[int] = None,
                              two_qubit_prob: float = 0.5,
                              name: str = "random-clifford-t") -> Circuit:
    """A random circuit restricted to the Clifford+T alphabet (CX basis)."""
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=name)
    for _ in range(num_gates):
        circuit.append(_random_gate(rng, num_qubits, _CLIFFORD_T_1Q,
                                    _CLIFFORD_T_2Q, two_qubit_prob))
    return circuit
