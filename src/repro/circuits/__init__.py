"""Benchmark circuit generators (Table 2 of the paper) and random circuits."""

from .qft import qft_circuit
from .bv import bv_circuit, random_secret
from .rca import ripple_carry_adder, rca_circuit_for_width
from .mctr import mctr_circuit
from .qaoa import qaoa_maxcut_circuit, qaoa_circuit_for_graph, random_maxcut_graph
from .uccsd import uccsd_circuit, pauli_string_exponential
from .arithmetic import arithmetic_snippet, arithmetic_snippet_layout
from .random_circuits import random_circuit, random_clifford_t_circuit
from .suite import (
    BenchmarkSpec,
    BENCHMARK_FAMILIES,
    build_benchmark,
    paper_configurations,
    scaled_configurations,
)

__all__ = [
    "qft_circuit",
    "bv_circuit",
    "random_secret",
    "ripple_carry_adder",
    "rca_circuit_for_width",
    "mctr_circuit",
    "qaoa_maxcut_circuit",
    "qaoa_circuit_for_graph",
    "random_maxcut_graph",
    "uccsd_circuit",
    "pauli_string_exponential",
    "arithmetic_snippet",
    "arithmetic_snippet_layout",
    "random_circuit",
    "random_clifford_t_circuit",
    "BenchmarkSpec",
    "BENCHMARK_FAMILIES",
    "build_benchmark",
    "paper_configurations",
    "scaled_configurations",
]
