"""Remote communication protocol circuits.

This module expands remote interactions into explicit protocol circuits so
the compiler's transformations can be *verified by simulation*:

* EPR pair preparation,
* quantum teleportation (TP-Comm building block),
* Cat-Comm (cat-entangler / cat-disentangler) execution of a burst block,
* TP-Comm execution of a burst block (teleport, run locally, teleport back).

The circuits use the *deferred measurement* form of the protocols: the
classically-controlled Pauli corrections of Figure 2 are replaced by the
equivalent quantum-controlled gates, which makes every protocol a pure
unitary circuit that the statevector simulator can check exactly.  The
measurement-based latency accounting (measurements, classical bits) lives in
:mod:`repro.hardware.timing` and :mod:`repro.comm.cost`; the physical
realisation does not change the compiler's decisions.

After a coherent cat-entangler/disentangler or teleportation, the
communication qubits are left in ``|+>`` states; callers that want to reuse
them can append Hadamards (see :func:`release_comm_qubit`).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..ir.circuit import Circuit
from ..ir.gates import Gate
from ..partition.mapping import QubitMapping
from .blocks import CommBlock

__all__ = [
    "epr_pair_circuit",
    "teleport_circuit",
    "release_comm_qubit",
    "remote_cx_via_cat",
    "remote_cx_via_tp",
    "cat_comm_block_circuit",
    "tp_comm_block_circuit",
]


def epr_pair_circuit(qubit_a: int, qubit_b: int, num_qubits: int) -> Circuit:
    """Prepare ``(|00> + |11>)/sqrt(2)`` on the pair ``(qubit_a, qubit_b)``."""
    circuit = Circuit(num_qubits, name="epr")
    circuit.h(qubit_a)
    circuit.cx(qubit_a, qubit_b)
    return circuit


def teleport_circuit(source: int, epr_near: int, epr_far: int,
                     num_qubits: int, include_epr: bool = True) -> Circuit:
    """Teleport the state of ``source`` onto ``epr_far``.

    ``epr_near`` / ``epr_far`` are the two halves of an EPR pair (near = same
    node as the source).  With deferred measurement the corrections become a
    CX from ``epr_near`` and a CZ from ``source``; afterwards ``source`` and
    ``epr_near`` are left in ``|+>``.
    """
    circuit = Circuit(num_qubits, name="teleport")
    if include_epr:
        circuit.h(epr_near)
        circuit.cx(epr_near, epr_far)
    circuit.cx(source, epr_near)
    circuit.h(source)
    circuit.cx(epr_near, epr_far)
    circuit.cz(source, epr_far)
    return circuit


def release_comm_qubit(circuit: Circuit, comm_qubit: int) -> Circuit:
    """Map a post-protocol ``|+>`` communication qubit back to ``|0>``."""
    circuit.h(comm_qubit)
    return circuit


def remote_cx_via_cat(control: int, target: int, comm_near: int, comm_far: int,
                      num_qubits: int) -> Circuit:
    """One remote CX implemented with Cat-Comm (Figure 2a, deferred form)."""
    block = [Gate("cx", (control, target))]
    return _cat_protocol(block, hub=control, comm_near=comm_near,
                         comm_far=comm_far, num_qubits=num_qubits)


def remote_cx_via_tp(control: int, target: int, comm_near: int, comm_far: int,
                     return_near: int, return_far: int,
                     num_qubits: int) -> Circuit:
    """One remote CX implemented with TP-Comm (Figure 2b, deferred form).

    ``(comm_near, comm_far)`` carry the outbound teleport,
    ``(return_far, return_near)`` carry the teleport that releases the
    occupied communication qubit by moving the state back to
    ``return_near`` on the control's node.
    """
    circuit = Circuit(num_qubits, name="remote-cx-tp")
    circuit.compose(teleport_circuit(control, comm_near, comm_far, num_qubits))
    circuit.cx(comm_far, target)
    circuit.compose(teleport_circuit(comm_far, return_far, return_near, num_qubits))
    return circuit


def _substitute_hub(gates: Iterable[Gate], hub: int, replacement: int) -> List[Gate]:
    out = []
    for gate in gates:
        if hub in gate.qubits:
            mapping = {q: (replacement if q == hub else q) for q in gate.qubits}
            out.append(gate.remap(mapping))
        else:
            out.append(gate)
    return out


# How single-qubit gates on the hub transform under conjugation by a Hadamard
# (used when the hub is the *target* of every remote CX, Figure 10a).
_H_CONJUGATION = {
    "x": ("z", False), "z": ("x", False), "h": ("h", False), "id": ("id", False),
    "sx": ("s", False), "sxdg": ("sdg", False), "s": ("sx", False),
    "sdg": ("sxdg", False), "rx": ("rz", True), "rz": ("rx", True),
    "y": ("y", True),
}


def _conjugate_hub_gate(gate: Gate) -> Gate:
    """Return ``H g H`` for a single-qubit gate on the hub."""
    entry = _H_CONJUGATION.get(gate.name)
    if entry is None:
        raise ValueError(
            f"cannot conjugate hub gate {gate.name!r} by Hadamard; such a gate "
            "should have forced a TP-Comm assignment")
    new_name, keep_params = entry
    params = gate.params if keep_params else ()
    if gate.name == "y":
        # H Y H = -Y; the sign is a global phase, keep Y.
        return Gate("y", gate.qubits)
    return Gate(new_name, gate.qubits, params)


def _conjugate_body_by_hub_h(gates: Sequence[Gate], hub: int) -> List[Gate]:
    """Conjugate the block body by ``H`` on the hub only.

    Remote CX gates targeting the hub become CZ gates (which are diagonal and
    therefore hub-control compatible); single-qubit hub gates are mapped
    through the Hadamard conjugation table; everything else is untouched.
    """
    out: List[Gate] = []
    for gate in gates:
        if gate.name == "cx" and gate.target == hub:
            out.append(Gate("cz", (hub, gate.qubits[0])))
        elif gate.is_single_qubit and gate.qubits[0] == hub:
            out.append(_conjugate_hub_gate(gate))
        else:
            out.append(gate)
    return out


def _cat_protocol(gates: Sequence[Gate], hub: int, comm_near: int, comm_far: int,
                  num_qubits: int, hub_is_target: bool = False) -> Circuit:
    """Cat-Comm execution of ``gates`` with the hub mirrored onto ``comm_far``.

    When ``hub_is_target`` is True the block is first conjugated by a
    Hadamard on the hub (Figure 10a) so that every remote gate becomes
    hub-diagonal and can ride on the cat state.
    """
    circuit = Circuit(num_qubits, name="cat-comm")
    body = list(gates)
    # Hub-only gates before the first / after the last multi-qubit gate can
    # (and for non-diagonal gates, must) run directly on the hub outside the
    # cat-entangled window.
    prefix: List[Gate] = []
    suffix: List[Gate] = []
    while body and body[0].is_single_qubit and body[0].qubits[0] == hub:
        prefix.append(body.pop(0))
    while body and body[-1].is_single_qubit and body[-1].qubits[0] == hub:
        suffix.insert(0, body.pop())

    for gate in prefix:
        circuit.append(gate)
    if hub_is_target:
        circuit.h(hub)
        body = _conjugate_body_by_hub_h(body, hub)
    # EPR pair between the two communication qubits.
    circuit.h(comm_near)
    circuit.cx(comm_near, comm_far)
    # Cat-entangler (deferred measurement form).
    circuit.cx(hub, comm_near)
    circuit.cx(comm_near, comm_far)
    # Execute the block with the hub replaced by the remote cat copy.
    for gate in _substitute_hub(body, hub, comm_far):
        circuit.append(gate)
    # Cat-disentangler (deferred measurement form).
    circuit.h(comm_far)
    circuit.cz(comm_far, hub)
    if hub_is_target:
        circuit.h(hub)
    for gate in suffix:
        circuit.append(gate)
    return circuit


def cat_comm_block_circuit(block: CommBlock, mapping: QubitMapping,
                           comm_near: int, comm_far: int,
                           num_qubits: int) -> Circuit:
    """Expand a burst block into its Cat-Comm protocol circuit.

    The block must be executable by a single Cat-Comm invocation
    (``block.cat_comm_cost(mapping) == 1``); otherwise a ``ValueError`` is
    raised — the assignment pass never asks for a multi-invocation Cat
    expansion.
    """
    from .blocks import CommPattern

    if block.cat_comm_cost(mapping) != 1:
        raise ValueError("block needs more than one Cat-Comm invocation; "
                         "assignment should have chosen TP-Comm")
    pattern = block.pattern(mapping)
    hub_is_target = pattern is CommPattern.UNIDIRECTIONAL_TARGET
    return _cat_protocol(block.gates, block.hub_qubit, comm_near, comm_far,
                         num_qubits, hub_is_target=hub_is_target)


def tp_comm_block_circuit(block: CommBlock, mapping: QubitMapping,
                          comm_near: int, comm_far: int,
                          return_near: int, return_far: int,
                          num_qubits: int) -> Circuit:
    """Expand a burst block into its TP-Comm protocol circuit.

    The hub state is teleported to ``comm_far`` on the remote node, the whole
    block runs locally there, and a second teleportation over
    ``(return_far, return_near)`` brings the state back onto the hub qubit's
    node (modelled here as landing on ``return_near``), after which a local
    SWAP restores it to the original hub qubit.
    """
    circuit = Circuit(num_qubits, name="tp-comm")
    hub = block.hub_qubit
    circuit.compose(teleport_circuit(hub, comm_near, comm_far, num_qubits))
    for gate in _substitute_hub(block.gates, hub, comm_far):
        circuit.append(gate)
    circuit.compose(teleport_circuit(comm_far, return_far, return_near, num_qubits))
    # The teleported state now sits on return_near (same node as the hub);
    # restore it onto the hub data qubit.  The hub qubit was left in |+> by the
    # outbound teleportation, so reset it coherently first.
    circuit.h(hub)
    circuit.cx(return_near, hub)
    circuit.cx(hub, return_near)
    circuit.cx(return_near, hub)
    return circuit
