"""Communication cost accounting.

The paper's first metric is the number of issued remote communications (one
*logical* EPR pair each).  Cat-Comm executes a whole block with one
communication; TP-Comm always charges two (one teleport out, one to release
the occupied communication qubit), which is exactly how Section 5.1 defines
the metric.  This module turns a list of assigned blocks into those counts
and also provides per-block latency estimates used by the scheduler.

On a routed topology (see :mod:`repro.hardware.routing`) one logical
end-to-end EPR pair between non-adjacent nodes is built by entanglement
swapping, consuming one *physical* EPR pair per link of the route.
``total_epr_pairs`` reports that swap-inclusive physical count alongside
``total_comm``; on all-to-all connectivity the two coincide.  With a
heterogeneous :class:`~repro.hardware.links.LinkModel` the pair count alone
no longer prices a program's communication — two routes of equal length may
cross very different fibres — so ``total_epr_latency`` additionally sums
each communication's derived end-to-end EPR preparation latency (the
routed link-latency combination), the same quantity the scheduler charges
per operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

from ..hardware.timing import DEFAULT_LATENCY, LatencyModel
from ..partition.mapping import QubitMapping
from .blocks import CommBlock, CommScheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.network import QuantumNetwork

__all__ = ["CommCost", "block_comm_count", "block_epr_pairs",
           "block_epr_latency", "total_comm_count", "block_latency",
           "peak_remote_cx_per_comm"]


@dataclass(frozen=True)
class CommCost:
    """Aggregate communication cost of a compiled program."""

    total_comm: int
    tp_comm: int
    cat_comm: int
    peak_remote_cx: float
    #: Physical EPR pairs consumed, entanglement swaps included.  Defaults
    #: to ``total_comm`` (direct links everywhere — the paper's assumption).
    total_epr_pairs: Optional[int] = None
    #: Sum over all communications of the pair's derived end-to-end EPR
    #: preparation latency (routed link-latency combination) — the
    #: latency-weighted communication volume.  ``None`` without a network.
    total_epr_latency: Optional[float] = None

    def __post_init__(self) -> None:
        if self.total_epr_pairs is None:
            object.__setattr__(self, "total_epr_pairs", self.total_comm)

    def as_dict(self) -> dict:
        return {
            "total_comm": self.total_comm,
            "tp_comm": self.tp_comm,
            "cat_comm": self.cat_comm,
            "peak_remote_cx": self.peak_remote_cx,
            "total_epr_pairs": self.total_epr_pairs,
            "total_epr_latency": self.total_epr_latency,
        }


def block_comm_count(block: CommBlock, mapping: QubitMapping) -> int:
    """Number of remote communications (EPR pairs) issued for one block."""
    if block.scheme is CommScheme.TP:
        return block.tp_comm_cost()
    if block.scheme is CommScheme.CAT:
        return block.cat_comm_cost(mapping)
    raise ValueError("block has no communication scheme assigned")


def block_epr_pairs(block: CommBlock, mapping: QubitMapping,
                    network: Optional["QuantumNetwork"] = None) -> int:
    """Physical EPR pairs consumed by one block, swaps included.

    Every logical communication of the block spans the same node pair
    (hub node <-> remote node); on a routed network each one consumes one
    physical pair per link of that pair's route.
    """
    logical = block_comm_count(block, mapping)
    if network is None:
        return logical
    return logical * network.epr_hops(block.hub_node, block.remote_node)


def block_epr_latency(block: CommBlock, mapping: QubitMapping,
                      network: "QuantumNetwork") -> float:
    """EPR preparation latency charged across one block's communications.

    Every logical communication of the block prepares one end-to-end pair
    between hub and remote node, whose latency is the routed link-latency
    combination ``network.epr_latency`` derives from the link model.
    """
    logical = block_comm_count(block, mapping)
    return logical * network.epr_latency(block.hub_node, block.remote_node)


def total_comm_count(blocks: Sequence[CommBlock], mapping: QubitMapping,
                     network: Optional["QuantumNetwork"] = None) -> CommCost:
    """Aggregate communication cost over all blocks of a compiled program.

    When ``network`` is given, ``total_epr_pairs`` counts the physical EPR
    pairs its entanglement routes consume and ``total_epr_latency`` sums the
    routed link-latency of every communication; otherwise direct uniform
    links are assumed and only the logical counts are reported.
    """
    total = 0
    tp = 0
    cat = 0
    peak = 0.0
    physical = 0
    epr_latency = 0.0
    for block in blocks:
        count = block_comm_count(block, mapping)
        total += count
        if block.scheme is CommScheme.TP:
            tp += count
        else:
            cat += count
        peak = max(peak, block_remote_cx_per_comm(block, mapping))
        physical += block_epr_pairs(block, mapping, network)
        if network is not None:
            epr_latency += block_epr_latency(block, mapping, network)
    return CommCost(total_comm=total, tp_comm=tp, cat_comm=cat,
                    peak_remote_cx=peak, total_epr_pairs=physical,
                    total_epr_latency=(epr_latency if network is not None
                                       else None))


def block_remote_cx_per_comm(block: CommBlock, mapping: QubitMapping) -> float:
    """Remote CX gates carried per communication by one block.

    For TP-Comm blocks the paper averages over the two communications of the
    round trip.
    """
    remote = block.num_remote_gates(mapping)
    comms = block_comm_count(block, mapping)
    if comms == 0:
        return 0.0
    return remote / comms


def peak_remote_cx_per_comm(blocks: Sequence[CommBlock],
                            mapping: QubitMapping) -> float:
    """Maximum remote CX gates carried by one communication (``Peak # REM CX``)."""
    return max((block_remote_cx_per_comm(b, mapping) for b in blocks), default=0.0)


def block_latency(block: CommBlock, mapping: QubitMapping,
                  latency: LatencyModel = DEFAULT_LATENCY) -> float:
    """Protocol latency of one block, excluding EPR-pair preparation.

    The scheduler adds EPR preparation separately so it can pipeline it with
    earlier computation.
    """
    num_2q, num_1q = block.gate_counts()
    if block.scheme is CommScheme.TP:
        return latency.tp_comm_latency(num_2q, num_1q)
    segments = max(1, block.cat_comm_cost(mapping))
    body = num_2q * latency.t_2q + num_1q * latency.t_1q
    return segments * (latency.t_cat_entangle + latency.t_cat_disentangle) + body
