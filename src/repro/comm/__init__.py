"""Remote communication substrate: blocks, protocols and cost accounting."""

from .blocks import CommBlock, CommPattern, CommScheme, cat_comm_segments
from .primitives import (
    epr_pair_circuit,
    teleport_circuit,
    release_comm_qubit,
    remote_cx_via_cat,
    remote_cx_via_tp,
    cat_comm_block_circuit,
    tp_comm_block_circuit,
)
from .cost import (
    CommCost,
    block_comm_count,
    block_epr_pairs,
    block_epr_latency,
    total_comm_count,
    block_latency,
    peak_remote_cx_per_comm,
)

__all__ = [
    "CommBlock",
    "CommPattern",
    "CommScheme",
    "cat_comm_segments",
    "epr_pair_circuit",
    "teleport_circuit",
    "release_comm_qubit",
    "remote_cx_via_cat",
    "remote_cx_via_tp",
    "cat_comm_block_circuit",
    "tp_comm_block_circuit",
    "CommCost",
    "block_comm_count",
    "block_epr_pairs",
    "block_epr_latency",
    "total_comm_count",
    "block_latency",
    "peak_remote_cx_per_comm",
]
