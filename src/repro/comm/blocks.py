"""Burst-communication blocks.

A *burst communication block* (Section 3.2 of the paper) is a group of
continuous remote two-qubit gates between one qubit (the *hub*) and one
remote node, possibly interleaved with local gates that were merged into the
block by the aggregation pass.  The block is the unit of work for the
assignment and scheduling passes: it is executed through one Cat-Comm
invocation (1 EPR pair) or one TP-Comm round trip (2 EPR pairs).

This module defines the block data structure, its pattern analysis
(unidirectional-control / unidirectional-target / bidirectional, and whether
single-qubit gates on the hub "block" a cheap Cat-Comm implementation) and
the Cat-Comm segmentation used to cost blocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir.gates import Gate
from ..partition.mapping import QubitMapping

__all__ = ["CommPattern", "CommScheme", "CommBlock", "cat_comm_segments"]


class CommPattern(enum.Enum):
    """Communication pattern of a burst block (Figure 9 of the paper)."""

    #: The hub qubit is the control of every remote CX (Figure 9a).
    UNIDIRECTIONAL_CONTROL = "unidirectional-control"
    #: The hub qubit is the target of every remote CX (Figure 9c).
    UNIDIRECTIONAL_TARGET = "unidirectional-target"
    #: The hub qubit appears both as control and as target (Figure 9b).
    BIDIRECTIONAL = "bidirectional"


class CommScheme(enum.Enum):
    """Remote communication scheme assigned to a block."""

    CAT = "cat-comm"
    TP = "tp-comm"


# Hub-side single-qubit gates that do not break a Cat-Comm segment where the
# hub acts as control (they commute with the CX control)...
_CONTROL_TRANSPARENT = frozenset({"z", "s", "sdg", "t", "tdg", "rz", "p", "id"})
# ... and where the hub acts as target (they commute with the CX target).
_TARGET_TRANSPARENT = frozenset({"x", "sx", "sxdg", "rx", "id"})


@dataclass
class CommBlock:
    """One burst-communication block.

    Attributes:
        hub_qubit: the program qubit on one side of every remote gate.
        hub_node: node hosting the hub qubit.
        remote_node: the node hosting all the partner qubits.
        gates: gates belonging to the block, in program order.  Remote
            two-qubit gates connect the hub to partner qubits on
            ``remote_node``; local gates merged into the block act on the hub
            or on ``remote_node`` qubits.
        scheme: communication scheme chosen by the assignment pass (None
            before assignment).
    """

    hub_qubit: int
    hub_node: int
    remote_node: int
    gates: List[Gate] = field(default_factory=list)
    scheme: Optional[CommScheme] = None

    def __post_init__(self) -> None:
        # Incrementally maintained union of the gates' qubits; the
        # aggregation and scheduling hot paths query it per candidate gate,
        # so it must not be recomputed by scanning ``gates`` every time.
        touched: Set[int] = set()
        for gate in self.gates:
            touched.update(gate.qubits)
        self._touched = touched
        # Mapping-derived analyses (remote-gate list, Cat-Comm segments) are
        # asked for repeatedly by assignment, cost accounting, scheduling and
        # simulation; they only change when the gate list does, so they are
        # cached per mapping object and dropped on mutation.  Each slot holds
        # (mapping, value) and is validated by identity, so a different
        # mapping never sees stale data.
        self._analysis_cache: Dict[str, Tuple[QubitMapping, object]] = {}

    def _cached_analysis(self, key: str, mapping: QubitMapping, compute):
        slot = self._analysis_cache.get(key)
        if slot is not None and slot[0] is mapping:
            return slot[1]
        value = compute()
        self._analysis_cache[key] = (mapping, value)
        return value

    # ---------------------------------------------------------------- content

    def __len__(self) -> int:
        return len(self.gates)

    def append(self, gate: Gate) -> None:
        self.gates.append(gate)
        self._touched.update(gate.qubits)
        if self._analysis_cache:
            self._analysis_cache.clear()

    def extend(self, gates: Iterable[Gate]) -> None:
        for gate in gates:
            self.gates.append(gate)
            self._touched.update(gate.qubits)
        if self._analysis_cache:
            self._analysis_cache.clear()

    def remote_gates(self, mapping: QubitMapping) -> List[Gate]:
        """The remote two-qubit gates of the block (hub <-> remote node)."""
        return self._cached_analysis(
            "remote", mapping,
            lambda: [g for g in self.gates
                     if g.is_two_qubit and mapping.is_remote(g)
                     and self.hub_qubit in g._qubit_set])

    def num_remote_gates(self, mapping: QubitMapping) -> int:
        return len(self.remote_gates(mapping))

    def partner_qubits(self, mapping: QubitMapping) -> Tuple[int, ...]:
        """Sorted remote-node qubits the hub interacts with."""
        partners: Set[int] = set()
        for gate in self.remote_gates(mapping):
            for q in gate.qubits:
                if q != self.hub_qubit:
                    partners.add(q)
        return tuple(sorted(partners))

    def gate_counts(self) -> Tuple[int, int]:
        """(multi-qubit, single-qubit) gate counts, cached per gate list."""
        slot = self._analysis_cache.get("counts")
        if slot is not None:
            return slot[1]
        num_multi = 0
        num_single = 0
        for gate in self.gates:
            if gate._is_multi:
                num_multi += 1
            elif gate._is_single:
                num_single += 1
        counts = (num_multi, num_single)
        self._analysis_cache["counts"] = (None, counts)
        return counts

    def touched_qubits(self) -> Tuple[int, ...]:
        """All program qubits appearing in the block."""
        return tuple(sorted(self._touched))

    @property
    def touched_set(self) -> Set[int]:
        """Cached set of all program qubits in the block (do not mutate)."""
        return self._touched

    @property
    def nodes(self) -> Tuple[int, int]:
        """The two nodes participating in the communication."""
        return (self.hub_node, self.remote_node)

    # ---------------------------------------------------------------- patterns

    def pattern(self, mapping: QubitMapping) -> CommPattern:
        """Classify the block as unidirectional (control/target) or bidirectional."""
        roles = set()
        for gate in self.remote_gates(mapping):
            if gate.control == self.hub_qubit:
                roles.add("control")
            elif gate.target == self.hub_qubit:
                roles.add("target")
            else:
                # Symmetric remote gate (e.g. rzz); both roles are possible,
                # treat as control-compatible since diagonal gates commute
                # with the hub acting as a Cat-Comm control.
                roles.add("control")
        if roles == {"control"}:
            return CommPattern.UNIDIRECTIONAL_CONTROL
        if roles == {"target"}:
            return CommPattern.UNIDIRECTIONAL_TARGET
        return CommPattern.BIDIRECTIONAL

    def hub_blocking_gates(self, mapping: QubitMapping) -> List[Gate]:
        """Single-qubit gates on the hub that separate remote gates.

        These are the gates that prevent a single Cat-Comm invocation
        (Section 4.3: "no single-qubit gate on the control qubit separates
        two-qubit gates").  Diagonal gates never block a control-pattern
        block and X-axis gates never block a target-pattern block.
        """
        pattern = self.pattern(mapping)
        transparent = (_CONTROL_TRANSPARENT
                       if pattern is CommPattern.UNIDIRECTIONAL_CONTROL
                       else _TARGET_TRANSPARENT)
        remote = [i for i, g in enumerate(self.gates)
                  if g.is_two_qubit and mapping.is_remote(g)]
        if len(remote) < 2:
            return []
        first, last = remote[0], remote[-1]
        blocking = []
        for i in range(first + 1, last):
            gate = self.gates[i]
            if (gate.is_single_qubit and gate.qubits[0] == self.hub_qubit
                    and gate.name not in transparent):
                blocking.append(gate)
        return blocking

    def cat_comm_cost(self, mapping: QubitMapping) -> int:
        """Number of Cat-Comm invocations (EPR pairs) needed for this block."""
        return len(cat_comm_segments(self, mapping))

    def tp_comm_cost(self) -> int:
        """Number of communications for TP-Comm: teleport out plus release."""
        return 2

    def epr_cost(self, mapping: QubitMapping) -> int:
        """EPR pairs consumed under the assigned (or best) scheme."""
        if self.scheme is CommScheme.CAT:
            return self.cat_comm_cost(mapping)
        if self.scheme is CommScheme.TP:
            return self.tp_comm_cost()
        return min(self.cat_comm_cost(mapping), self.tp_comm_cost())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scheme = self.scheme.value if self.scheme else "unassigned"
        return (f"CommBlock(hub=q{self.hub_qubit}@n{self.hub_node}, "
                f"remote=n{self.remote_node}, gates={len(self.gates)}, {scheme})")


def cat_comm_segments(block: CommBlock, mapping: QubitMapping) -> List[List[Gate]]:
    """Split a block into maximal runs each executable by one Cat-Comm call.

    A run accumulates remote gates while (a) the hub keeps the same role
    (control or target) and (b) no opaque single-qubit gate on the hub
    appears between two remote gates of the run.  Local partner-side gates
    never end a run (they execute on the remote node while the cat state is
    live, cf. Figure 3).

    The segmentation is cached on the block (assignment, cost accounting and
    the scheduler all ask for it); the cache drops when the block mutates.
    """
    return block._cached_analysis(
        "segments", mapping, lambda: _cat_comm_segments(block, mapping))


def _cat_comm_segments(block: CommBlock, mapping: QubitMapping) -> List[List[Gate]]:
    segments: List[List[Gate]] = []
    current: List[Gate] = []
    current_role: Optional[str] = None
    pending_hub_blocker = False

    def close() -> None:
        nonlocal current, current_role, pending_hub_blocker
        if current:
            segments.append(current)
        current = []
        current_role = None
        pending_hub_blocker = False

    for gate in block.gates:
        is_remote = gate.is_two_qubit and mapping.is_remote(gate) and block.hub_qubit in gate.qubits
        if is_remote:
            if gate.control == block.hub_qubit:
                role = "control"
            elif gate.target == block.hub_qubit:
                role = "target"
            else:
                role = "control"  # symmetric diagonal remote gate
            if current_role is None:
                current_role = role
            elif role != current_role or pending_hub_blocker:
                close()
                current_role = role
            current.append(gate)
            pending_hub_blocker = False
        elif gate.is_single_qubit and gate.qubits[0] == block.hub_qubit:
            transparent = (_CONTROL_TRANSPARENT if current_role in (None, "control")
                           else _TARGET_TRANSPARENT)
            if gate.name not in transparent and current:
                pending_hub_blocker = True
            current.append(gate)
        else:
            # Local gate on the remote node's qubits: part of the current run.
            current.append(gate)
    close()
    return [seg for seg in segments if any(
        g.is_two_qubit and mapping.is_remote(g) for g in seg)] or ([block.gates] if block.gates else [])
